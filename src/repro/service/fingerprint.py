"""Content-addressed fingerprints of hypergraphs and partition requests.

Two complementary hashes, both SHA-256 hex digests over a normalised
serialisation:

* :func:`exact_fingerprint` — identifies one *concrete* hypergraph
  instance: the pin structure exactly as indexed, plus module count,
  areas, and net weights.  Module/net *names* and the hypergraph's
  display ``name`` are excluded — they never influence any algorithm.
  This is the hash the result cache keys on, because partitioners break
  ties by module and net index: two relabelings of the same netlist are
  different problem instances with (potentially) different answers.
* :func:`canonical_fingerprint` — identifies the netlist *up to
  relabeling*: invariant under any permutation of module indices and
  any permutation of net indices.  It is computed from Weisfeiler–Leman
  colour refinement over the bipartite module/net incidence structure,
  hashing the sorted multisets of stable colours.  Use it to key
  external caches, deduplicate netlist libraries, or recognise that two
  differently-ordered files describe the same circuit.  (Like every
  WL-style invariant it is not injective on non-isomorphic graphs in
  pathological cases; it is a fingerprint, not a certificate.)

:func:`request_fingerprint` extends the exact hash with the frozen
request configuration (algorithm, seed, every quality-affecting knob)
and the result-payload schema version — the full cache key under which
:mod:`repro.service.cache` stores results.  Parallel execution settings
are deliberately **not** part of the key: :mod:`repro.parallel`
guarantees bit-identical results for any worker count and backend.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..hypergraph import Hypergraph
    from .engine import PartitionRequest

__all__ = [
    "FINGERPRINT_SCHEMA",
    "canonical_fingerprint",
    "exact_fingerprint",
    "request_fingerprint",
]

#: Version tag mixed into every digest.  Bump whenever the serialisation
#: below (or the cached result payload in :mod:`repro.service.engine`)
#: changes shape, so stale disk caches miss instead of deserialising
#: garbage.
FINGERPRINT_SCHEMA = 1

#: Rounds of Weisfeiler–Leman refinement for the canonical fingerprint.
#: Colours stabilise in O(diameter) rounds; eight is plenty for netlist
#: topologies while keeping the hash cost linear in pins per round.
_WL_ROUNDS = 8


def _sha(parts: List[bytes]) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part)
        digest.update(b"\x00")
    return digest.hexdigest()


def _number(x: float) -> str:
    """Canonical text for a number: integers lose the decimal point."""
    f = float(x)
    return str(int(f)) if f == int(f) else repr(f)


def exact_fingerprint(h: "Hypergraph") -> str:
    """SHA-256 of the concrete instance (label-sensitive; cache key)."""
    parts = [
        b"repro-exact-fp",
        str(FINGERPRINT_SCHEMA).encode(),
        str(h.num_modules).encode(),
        str(h.num_nets).encode(),
    ]
    for _, pins in h.iter_nets():
        parts.append(",".join(map(str, pins)).encode())
    if any(a != 1.0 for a in h.module_areas):
        parts.append(b"areas")
        parts.append(",".join(_number(a) for a in h.module_areas).encode())
    if any(w != 1.0 for w in h.net_weights):
        parts.append(b"weights")
        parts.append(",".join(_number(w) for w in h.net_weights).encode())
    return _sha(parts)


def _hash64(*fields: object) -> int:
    """A stable 64-bit hash of a tuple of primitives (WL colour)."""
    text = "\x1f".join(str(f) for f in fields)
    return int.from_bytes(
        hashlib.blake2b(text.encode(), digest_size=8).digest(), "big"
    )


def canonical_fingerprint(h: "Hypergraph") -> str:
    """SHA-256 invariant under module and net index permutations.

    Initial colours encode each object's local invariants (degree,
    area / weight, incident-size profile); each refinement round
    re-colours every module by the sorted multiset of its nets' colours
    and vice versa.  The final digest hashes the sorted colour
    multisets, so no original index survives into the hash.
    """
    areas = h.module_areas
    weights = h.net_weights
    module_colour: List[int] = [
        _hash64(
            "m",
            h.module_degree(v),
            _number(areas[v]),
            ",".join(
                str(s)
                for s in sorted(h.net_size(e) for e in h.nets_of(v))
            ),
        )
        for v in range(h.num_modules)
    ]
    net_colour: List[int] = [
        _hash64("n", h.net_size(e), _number(weights[e]))
        for e in range(h.num_nets)
    ]
    for _ in range(_WL_ROUNDS):
        new_net = [
            _hash64(
                net_colour[e],
                ",".join(
                    str(c) for c in sorted(module_colour[v] for v in pins)
                ),
            )
            for e, pins in h.iter_nets()
        ]
        new_module = [
            _hash64(
                module_colour[v],
                ",".join(
                    str(c) for c in sorted(new_net[e] for e in nets)
                ),
            )
            for v, nets in h.iter_modules()
        ]
        if new_net == net_colour and new_module == module_colour:
            break
        net_colour, module_colour = new_net, new_module
    parts = [
        b"repro-canonical-fp",
        str(FINGERPRINT_SCHEMA).encode(),
        str(h.num_modules).encode(),
        str(h.num_nets).encode(),
        ",".join(str(c) for c in sorted(module_colour)).encode(),
        ",".join(str(c) for c in sorted(net_colour)).encode(),
    ]
    return _sha(parts)


def request_fingerprint(h: "Hypergraph", request: "PartitionRequest") -> str:
    """The full cache key: exact instance hash + frozen request config."""
    config: Dict[str, object] = request.key_fields()
    parts = [
        b"repro-request-fp",
        str(FINGERPRINT_SCHEMA).encode(),
        exact_fingerprint(h).encode(),
        json.dumps(config, sort_keys=True, separators=(",", ":")).encode(),
    ]
    return _sha(parts)
