"""Linear orderings induced by spectral coordinates.

Sorting the Fiedler vector gives the linear ordering of modules (EIG1) or
nets (IG-Vote / IG-Match) that the sweep algorithms split.  Ties are broken
by index so orderings are deterministic — determinism and "stability" are
selling points the paper emphasises over restart-based methods.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

from ..errors import SpectralError
from ..graph import Graph
from ..obs import span
from .fiedler import component_spectral_values, fiedler_vector

__all__ = ["ordering_from_values", "spectral_ordering"]


def ordering_from_values(values: Union[np.ndarray, List[float]]) -> List[int]:
    """Indices sorted ascending by value; ties broken by index."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise SpectralError(
            f"expected a 1-D value vector, got shape {array.shape}"
        )
    return [int(i) for i in np.argsort(array, kind="stable")]


def spectral_ordering(
    g: Graph, backend: str = "scipy", seed: int = 0, tol: float = 1e-9
) -> List[int]:
    """Fiedler ordering of the vertices of ``g``.

    Connected graphs use the Fiedler vector directly; disconnected graphs
    fall back to per-component spectral coordinates (see
    :func:`repro.spectral.fiedler.component_spectral_values`), which keep
    components contiguous in the ordering.  ``tol`` is forwarded to the
    eigensolver (the ``lanczos`` backend honours relaxed tolerances —
    the speed/quality knob the paper's conclusion mentions).
    """
    if g.num_vertices <= 2:
        return list(range(g.num_vertices))
    with span("spectral.ordering", n=g.num_vertices, backend=backend):
        try:
            values = fiedler_vector(
                g, backend=backend, seed=seed, tol=tol
            ).vector
        except SpectralError:
            values = component_spectral_values(
                g, backend=backend, seed=seed
            )
        return ordering_from_values(values)
