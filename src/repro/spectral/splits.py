"""Split sweeps over a linear module ordering.

Given an ordering ``v_1 .. v_n`` of the modules (typically from a sorted
Fiedler vector), the EIG1 method of Hagen–Kahng evaluates every splitting
rank ``r``: modules with rank <= r form ``U`` and the rest ``W``.  This
module implements that sweep *incrementally*: moving one module across the
split touches only its incident nets, so the whole sweep costs O(pins)
after setup, and the best ratio-cut split falls out directly.

The ratio cut uses module counts for the denominator, matching the paper's
tables (e.g. bm1: 1 net cut, areas 9:873, ratio cut 12.73e-5 = 1/(9*873)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import PartitionError
from ..hypergraph import Hypergraph
from ..obs import emit, incr, is_enabled, span

__all__ = ["SplitPoint", "SplitSweep", "sweep_module_splits"]


@dataclass(frozen=True)
class SplitPoint:
    """One evaluated split of the ordering.

    ``rank`` modules (orders ``0 .. rank-1``) are on the U side.
    """

    rank: int
    nets_cut: int
    ratio_cut: float


@dataclass(frozen=True)
class SplitSweep:
    """All splits of one ordering, and the best one found."""

    order: List[int]
    points: List[SplitPoint]

    @property
    def best(self) -> SplitPoint:
        """The split with minimum ratio cut (ties: smaller rank)."""
        return min(self.points, key=lambda p: (p.ratio_cut, p.rank))

    def best_sides(self) -> tuple:
        """The (U, W) module lists of the best split."""
        rank = self.best.rank
        return (sorted(self.order[:rank]), sorted(self.order[rank:]))


def sweep_module_splits(
    h: Hypergraph, order: Sequence[int]
) -> SplitSweep:
    """Evaluate net cut and ratio cut at every split of ``order``.

    ``order`` must be a permutation of all module indices.  Splitting
    ranks ``1 .. n-1`` are evaluated (both sides non-empty).
    """
    n = h.num_modules
    if sorted(order) != list(range(n)):
        raise PartitionError(
            "order must be a permutation of all module indices"
        )
    if n < 2:
        raise PartitionError("need at least 2 modules to split")

    with span("splits.sweep", modules=n, nets=h.num_nets) as sp:
        pins_in_u = [0] * h.num_nets
        sizes = h.net_sizes()
        nets_cut = 0
        points: List[SplitPoint] = []

        for rank, module in enumerate(order[:-1], start=1):
            for net in h.nets_of(module):
                count = pins_in_u[net]
                size = sizes[net]
                was_cut = 0 < count < size
                count += 1
                pins_in_u[net] = count
                is_cut = 0 < count < size
                nets_cut += int(is_cut) - int(was_cut)
            denominator = rank * (n - rank)
            points.append(
                SplitPoint(
                    rank=rank,
                    nets_cut=nets_cut,
                    ratio_cut=nets_cut / denominator,
                )
            )
        sweep = SplitSweep(order=list(order), points=points)
        sp.set(splits=len(points), best_rank=sweep.best.rank)
        incr("splits.evaluated", len(points))
        if is_enabled():
            # The full ratio-cut-vs-split-index curve (the EIG1 sweep
            # figure) as one point event — deterministic under a fixed
            # seed, so the paper's curve is a reproducible artifact.
            emit(
                "splits.curve",
                modules=n,
                ranks=[p.rank for p in points],
                nets_cut=[p.nets_cut for p in points],
                ratio_cuts=[p.ratio_cut for p in points],
                best_rank=sweep.best.rank,
            )
    return sweep
