"""Rayleigh-quotient iteration: polishing approximate eigenpairs.

The paper's conclusion suggests speeding the eigensolve up "by
relaxation of the numerical convergence criteria" — run Lanczos with a
loose tolerance, order the nets from the rough eigenvector, and rely on
the sweep's robustness.  RQI is the complementary tool: given a rough
eigenpair it converges *cubically* to a nearby exact one, so a loose
Lanczos pass plus one or two RQI steps recovers full accuracy at a
fraction of the cost of tight Lanczos.

Dense factorisation per step makes this practical up to a few thousand
vertices — exactly the paper's problem sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import SpectralError

__all__ = ["RQIResult", "rayleigh_quotient_iteration"]


@dataclass(frozen=True)
class RQIResult:
    """A polished eigenpair and its convergence record."""

    eigenvalue: float
    vector: np.ndarray
    iterations: int
    residual: float


def rayleigh_quotient_iteration(
    matrix: Union[sp.spmatrix, np.ndarray],
    x0: np.ndarray,
    max_iterations: int = 8,
    tol: float = 1e-12,
) -> RQIResult:
    """Polish the eigenpair nearest to ``x0`` by Rayleigh-quotient
    iteration.

    Each step solves ``(A - mu I) y = x`` with ``mu`` the current
    Rayleigh quotient and renormalises.  Converges cubically for
    symmetric matrices; which eigenpair it converges to depends on the
    starting vector (use a Lanczos approximation, not a random vector).
    """
    if sp.issparse(matrix):
        matrix = sp.csc_matrix(matrix)
        solve = lambda m, b: spla.spsolve(m, b)  # noqa: E731
        shifted = lambda mu: matrix - mu * sp.identity(  # noqa: E731
            matrix.shape[0], format="csc"
        )
    else:
        matrix = np.asarray(matrix, dtype=float)
        solve = np.linalg.solve
        shifted = lambda mu: matrix - mu * np.eye(  # noqa: E731
            matrix.shape[0]
        )
    n = matrix.shape[0]
    if matrix.shape[0] != matrix.shape[1]:
        raise SpectralError(f"matrix must be square, got {matrix.shape}")
    x = np.asarray(x0, dtype=float)
    if x.shape != (n,):
        raise SpectralError(
            f"start vector has shape {x.shape}, expected ({n},)"
        )
    norm = np.linalg.norm(x)
    if norm == 0:
        raise SpectralError("start vector must be nonzero")
    x = x / norm

    mu = float(x @ (matrix @ x))
    residual = float(np.linalg.norm(matrix @ x - mu * x))
    iterations = 0
    scale = max(1.0, abs(mu))
    for iterations in range(1, max_iterations + 1):
        if residual <= tol * scale:
            iterations -= 1
            break
        try:
            y = solve(shifted(mu), x)
        except Exception:
            # (A - mu I) numerically singular: mu is (essentially) an
            # exact eigenvalue; x is the converged eigenvector.
            break
        y = np.asarray(y, dtype=float).reshape(n)
        norm = np.linalg.norm(y)
        if not np.isfinite(norm) or norm == 0:
            break
        x = y / norm
        mu = float(x @ (matrix @ x))
        residual = float(np.linalg.norm(matrix @ x - mu * x))
        scale = max(1.0, abs(mu))
    return RQIResult(
        eigenvalue=mu, vector=x, iterations=iterations, residual=residual
    )
