"""Fiedler vectors: the second-smallest Laplacian eigenpair.

Given a connected graph with Laplacian ``Q = D - A``, the smallest
eigenvalue is 0 (constant eigenvector) and the second-smallest eigenpair
``(lambda_2, x)`` drives both the EIG1 module ordering and the IG-Match
net ordering.  Theorem 1 (Hagen–Kahng) guarantees
``lambda_2 / n <= c_opt`` for the optimal ratio cut cost ``c_opt``.

Two interchangeable backends are provided:

* ``"lanczos"`` — our own solver (:mod:`repro.spectral.lanczos`), run on
  the shifted operator ``c·I - Q`` so the wanted pair is *largest*, the
  regime where Lanczos converges fastest (exactly the paper's trick of
  feeding ``A - D`` to its Lanczos code).
* ``"scipy"`` — ``scipy.sparse.linalg.eigsh`` on the same shifted
  operator, used for cross-validation and as a robust default.

Disconnected graphs have ``lambda_2 = 0`` with a component-indicator
eigenvector, which carries no ordering information *within* components;
:func:`fiedler_vector` therefore requires connectivity and
:func:`component_spectral_values` handles the general case by solving each
component independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import SpectralError
from ..graph import Graph, connected_components, laplacian_matrix
from ..obs import emit, incr, is_enabled, span
from .lanczos import lanczos_extreme

__all__ = [
    "FiedlerResult",
    "component_spectral_values",
    "fiedler_vector",
    "nontrivial_eigenvectors",
]

_BACKENDS = ("scipy", "lanczos")


@dataclass(frozen=True)
class FiedlerResult:
    """The second-smallest Laplacian eigenpair of a connected graph."""

    eigenvalue: float
    vector: np.ndarray
    backend: str

    def ratio_cut_lower_bound(self) -> float:
        """Theorem 1's bound: ``lambda_2 / n <= optimal ratio cut``."""
        return self.eigenvalue / len(self.vector)


def _shifted_laplacian(g: Graph) -> Tuple[sp.csr_matrix, float]:
    """Return ``c·I - Q`` and ``c``, with ``c >= lambda_max(Q)``.

    By Gershgorin, ``lambda_max(Q) <= 2 * max_degree``, so the shift makes
    the wanted (small) eigenvalues of ``Q`` the *large* eigenvalues of the
    shifted operator.
    """
    laplacian = laplacian_matrix(g)
    degrees = g.degrees()
    shift = 2.0 * max(degrees, default=0.0) + 1.0
    n = g.num_vertices
    return (sp.identity(n, format="csr") * shift - laplacian).tocsr(), shift


def _counting_operator(matrix: sp.csr_matrix):
    """Wrap a sparse matrix so ARPACK matvecs can be counted.

    scipy's ``eigsh`` is an implicitly restarted Lanczos method; one
    matvec is one Lanczos step, so the call count is the natural
    iteration statistic when profiling the ``"scipy"`` backend.  Only
    used while instrumentation is on — the wrapper costs one Python
    call per matvec.
    """
    calls = [0]

    def matvec(x: np.ndarray) -> np.ndarray:
        calls[0] += 1
        return matrix @ x

    operator = spla.LinearOperator(
        matrix.shape, matvec=matvec, dtype=matrix.dtype
    )
    return operator, calls


def _canonical_sign(vector: np.ndarray) -> np.ndarray:
    """Fix the eigenvector's sign so results are deterministic.

    The first component of largest magnitude is made positive.
    """
    idx = int(np.argmax(np.abs(vector)))
    if vector[idx] < 0:
        return -vector
    return vector


def fiedler_vector(
    g: Graph, backend: str = "scipy", seed: int = 0, tol: float = 1e-9
) -> FiedlerResult:
    """Compute ``(lambda_2, x)`` of the Laplacian of a connected graph.

    Raises :class:`SpectralError` for graphs with fewer than 2 vertices or
    more than one connected component.
    """
    if backend not in _BACKENDS:
        raise SpectralError(
            f"unknown backend {backend!r}; available: {_BACKENDS}"
        )
    n = g.num_vertices
    if n < 2:
        raise SpectralError(
            f"Fiedler vector undefined for a {n}-vertex graph"
        )
    components = connected_components(g)
    if len(components) > 1:
        raise SpectralError(
            f"graph is disconnected ({len(components)} components); "
            "use component_spectral_values or partition components first"
        )

    with span("spectral.fiedler", backend=backend, n=n) as sp:
        shifted, shift = _shifted_laplacian(g)
        if backend == "lanczos":
            res = lanczos_extreme(
                shifted, k=2, which="LA", tol=tol, seed=seed
            )
            # Shifted-largest come back ascending; the largest is the
            # trivial pair (lambda=0 of Q), second-largest is Fiedler.
            mu_fiedler = res.eigenvalues[0]
            vector = res.eigenvectors[:, 0]
        else:
            if n <= 16:
                # eigsh needs k < n and behaves poorly on tiny systems;
                # a dense solve is exact and cheap here.
                sp.set(method="dense")
                dense = shifted.toarray()
                mu, vecs = np.linalg.eigh(dense)
                mu_fiedler = mu[-2]
                vector = vecs[:, -2]
            else:
                rng = np.random.default_rng(seed)
                v0 = rng.standard_normal(n)
                with span(
                    "spectral.lanczos", backend="scipy-eigsh", n=n, k=2
                ) as lsp:
                    if is_enabled():
                        operator, calls = _counting_operator(shifted)
                    else:
                        operator, calls = shifted, [0]
                    mu, vecs = spla.eigsh(
                        operator, k=2, which="LA", tol=0, v0=v0
                    )
                    if is_enabled():
                        lsp.set(iterations=calls[0])
                        incr("lanczos.solves")
                        incr("lanczos.iterations", calls[0])
                        emit(
                            "spectral.lanczos",
                            backend="scipy-eigsh",
                            n=n,
                            k=2,
                            iterations=calls[0],
                        )
                order = np.argsort(mu)
                mu_fiedler = mu[order[0]]
                vector = vecs[:, order[0]]

        eigenvalue = float(shift - mu_fiedler)
        sp.set(eigenvalue=round(eigenvalue, 9))
    if eigenvalue < 0 and eigenvalue > -1e-8:
        eigenvalue = 0.0
    return FiedlerResult(
        eigenvalue=eigenvalue,
        vector=_canonical_sign(np.asarray(vector, dtype=float)),
        backend=backend,
    )


def nontrivial_eigenvectors(
    g: Graph,
    count: int,
    backend: str = "scipy",
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Eigenpairs 2 .. count+1 of the Laplacian of a connected graph.

    Returns ``(eigenvalues, vectors)`` with ``vectors[:, i]`` the
    eigenvector for the (i+2)-th smallest eigenvalue.  Column 0 is the
    Fiedler vector; later columns are the alternative orderings used by
    multi-eigenvector sweep variants.
    """
    if count < 1:
        raise SpectralError(f"count must be >= 1, got {count}")
    n = g.num_vertices
    if n < count + 2:
        raise SpectralError(
            f"{n} vertices cannot supply {count} nontrivial eigenvectors"
        )
    if len(connected_components(g)) > 1:
        raise SpectralError(
            "nontrivial_eigenvectors requires a connected graph"
        )
    with span(
        "spectral.eigenvectors", backend=backend, n=n, count=count
    ):
        shifted, shift = _shifted_laplacian(g)
        k = count + 1
        if backend == "lanczos":
            res = lanczos_extreme(shifted, k=k, which="LA", seed=seed)
            mu = res.eigenvalues
            vecs = res.eigenvectors
        elif backend == "scipy":
            if n <= max(2 * k, 20):
                mu_all, vecs_all = np.linalg.eigh(shifted.toarray())
                mu = mu_all[-k:]
                vecs = vecs_all[:, -k:]
            else:
                rng = np.random.default_rng(seed)
                if is_enabled():
                    operator, calls = _counting_operator(shifted)
                else:
                    operator, calls = shifted, [0]
                mu, vecs = spla.eigsh(
                    operator, k=k, which="LA",
                    v0=rng.standard_normal(n),
                )
                if is_enabled():
                    incr("lanczos.solves")
                    incr("lanczos.iterations", calls[0])
                    emit(
                        "spectral.lanczos",
                        backend="scipy-eigsh",
                        n=n,
                        k=k,
                        iterations=calls[0],
                    )
        else:
            raise SpectralError(
                f"unknown backend {backend!r}; available: {_BACKENDS}"
            )
    # Sort by descending mu = ascending Laplacian eigenvalue; drop the
    # trivial (constant) eigenvector.
    order = np.argsort(mu)[::-1]
    mu = mu[order][1:]
    vecs = vecs[:, order][:, 1:]
    eigenvalues = shift - mu
    vectors = np.column_stack(
        [_canonical_sign(vecs[:, i]) for i in range(count)]
    )
    return np.asarray(eigenvalues, dtype=float), vectors


def component_spectral_values(
    g: Graph, backend: str = "scipy", seed: int = 0
) -> np.ndarray:
    """A spectral coordinate for every vertex of a possibly-disconnected
    graph.

    Each connected component is solved independently; component ``i``
    (ordered by decreasing size, ties by smallest vertex) contributes its
    own Fiedler coordinates, offset so components occupy disjoint value
    ranges.  Sorting the returned vector therefore groups components
    contiguously and orders each component spectrally — the natural
    generalisation of the Fiedler ordering that the sweep algorithms need.

    Components of size 1 or 2 get constant / index-based coordinates.
    """
    n = g.num_vertices
    if n == 0:
        return np.zeros(0)
    values = np.zeros(n)
    components = connected_components(g)
    components.sort(key=lambda c: (-len(c), c[0]))
    offset = 0.0
    for comp in components:
        size = len(comp)
        if size == 1:
            local = np.zeros(1)
            span = 1.0
        elif size == 2:
            local = np.array([0.0, 1.0])
            span = 2.0
        else:
            sub, vertex_map = g.induced_subgraph(comp)
            res = fiedler_vector(sub, backend=backend, seed=seed)
            local = res.vector
            span = float(local.max() - local.min()) + 1.0
            local = local - local.min()
            comp = vertex_map
        for vertex, value in zip(comp, local):
            values[vertex] = offset + value
        offset += span + 1.0
    return values
