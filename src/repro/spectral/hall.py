"""Hall's r-dimensional quadratic placement (Appendix A of the paper).

Hall (1970) showed that minimising the quadratic wirelength
``z = 1/2 * sum_ij (x_i - x_j)^2 A_ij = x^T Q x`` subject to ``|x| = 1``
is solved by eigenvectors of the Laplacian ``Q = D - A``: the trivial
minimum is the constant vector (eigenvalue 0), so the second-smallest
eigenvector gives the best nontrivial 1-D placement, the next eigenvector
the second coordinate, and so on.  This is the historical root of the
spectral partitioning method the paper builds on, and it doubles as a tiny
analytical placer for the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import SpectralError
from ..graph import Graph, connected_components, laplacian_matrix

__all__ = ["HallPlacement", "hall_placement", "quadratic_wirelength"]


@dataclass(frozen=True)
class HallPlacement:
    """An r-dimensional spectral placement.

    ``coordinates[i, d]`` is vertex *i*'s coordinate along dimension *d*;
    ``eigenvalues[d]`` is the corresponding Laplacian eigenvalue (equal to
    the quadratic wirelength achieved along that axis).
    """

    coordinates: np.ndarray
    eigenvalues: np.ndarray

    @property
    def dimensions(self) -> int:
        return self.coordinates.shape[1]


def quadratic_wirelength(g: Graph, x: np.ndarray) -> float:
    """Hall's objective ``z = 1/2 sum (x_i - x_j)^2 A_ij = x^T Q x``."""
    x = np.asarray(x, dtype=float)
    if x.shape != (g.num_vertices,):
        raise SpectralError(
            f"coordinate vector has shape {x.shape}, "
            f"expected ({g.num_vertices},)"
        )
    total = 0.0
    for u, v, w in g.edges():
        diff = x[u] - x[v]
        total += diff * diff * w
    return total


def hall_placement(g: Graph, dimensions: int = 2, seed: int = 0) -> HallPlacement:
    """Place the vertices of connected ``g`` in ``dimensions`` dimensions.

    Uses eigenvectors 2 .. dimensions+1 of the Laplacian (skipping the
    trivial constant eigenvector).
    """
    n = g.num_vertices
    if dimensions < 1:
        raise SpectralError(f"dimensions must be >= 1, got {dimensions}")
    if n < dimensions + 2:
        raise SpectralError(
            f"{n} vertices cannot support a {dimensions}-D Hall placement"
        )
    if len(connected_components(g)) != 1:
        raise SpectralError("Hall placement requires a connected graph")

    laplacian = laplacian_matrix(g)
    k = dimensions + 1
    if n <= max(2 * k, 20):
        values, vectors = np.linalg.eigh(laplacian.toarray())
    else:
        shift = 2.0 * max(g.degrees()) + 1.0
        shifted = sp.identity(n, format="csr") * shift - laplacian
        rng = np.random.default_rng(seed)
        mu, vectors = spla.eigsh(
            shifted, k=k, which="LA", v0=rng.standard_normal(n)
        )
        values = shift - mu
        order = np.argsort(values)
        values = values[order]
        vectors = vectors[:, order]
    return HallPlacement(
        coordinates=np.array(vectors[:, 1 : dimensions + 1]),
        eigenvalues=np.array(values[1 : dimensions + 1]),
    )
