"""A Lanczos eigensolver for sparse symmetric matrices.

The paper computes the second-largest eigenpair of ``-Q = A - D`` with a
block Lanczos code, citing Kaniel–Paige–Saad convergence theory (extreme
eigenvalues converge first).  This module provides an independent,
pure-Python/numpy Lanczos implementation with *full reorthogonalisation* —
the textbook cure for the loss of orthogonality that otherwise produces
spurious duplicate Ritz values (Golub & Van Loan, ch. 9).

For the modest problem sizes of the paper's benchmarks (matrices of order
a few thousand) full reorthogonalisation is affordable and makes the solver
essentially exact once the Krylov space saturates.  The scipy ``eigsh``
backend in :mod:`repro.spectral.fiedler` cross-validates this code in the
test suite.

Known limitation (inherent to single-vector Lanczos): a multiple extreme
eigenvalue is only resolved to its full multiplicity when the iteration
hits an invariant subspace and restarts (which happens for structurally
symmetric cases, e.g. identical graph components).  When components merely
*share* the eigenvalue 0 (any disconnected graph), a generic Krylov space
reports each distinct eigenvalue once.  The Fiedler-vector layer therefore
never feeds disconnected Laplacians to this solver — it decomposes into
connected components first (:mod:`repro.spectral.fiedler`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Union

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp

from ..errors import SpectralError
from ..obs import add_timing, emit, incr, is_enabled

__all__ = ["LanczosResult", "lanczos_extreme"]

MatVec = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class LanczosResult:
    """Converged extreme eigenpairs.

    ``eigenvalues`` are sorted ascending; ``eigenvectors[:, i]`` pairs with
    ``eigenvalues[i]``.  ``num_steps`` is the Krylov dimension used and
    ``residuals`` the per-pair residual norm estimates
    ``|beta_j * s_{j,i}|``.
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    num_steps: int
    residuals: np.ndarray


def _as_matvec(
    operator: Union[sp.spmatrix, np.ndarray, MatVec], n: Optional[int]
) -> Tuple[MatVec, int]:
    if callable(operator) and not isinstance(operator, np.ndarray):
        if n is None:
            raise SpectralError(
                "matrix size n must be given when operator is a callable"
            )
        return operator, n
    matrix = operator
    if matrix.shape[0] != matrix.shape[1]:
        raise SpectralError(f"matrix must be square, got {matrix.shape}")
    if sp.issparse(matrix):
        # Bind the sparse matvec directly: one fewer Python frame per
        # Lanczos step, and the CSR kernel is the same routine ``@``
        # dispatches to, so results are bit-identical.  The real win is
        # upstream — under the csr core the matrix arrives assembled
        # from cached CSR arrays with no COO intermediate.
        return matrix.dot, matrix.shape[0]
    return (lambda x: matrix @ x), matrix.shape[0]


def lanczos_extreme(
    operator: Union[sp.spmatrix, np.ndarray, MatVec],
    k: int = 2,
    which: str = "LA",
    n: Optional[int] = None,
    tol: float = 1e-9,
    max_steps: Optional[int] = None,
    seed: int = 0,
) -> LanczosResult:
    """Compute ``k`` extreme eigenpairs of a symmetric operator.

    Parameters
    ----------
    operator:
        A symmetric scipy sparse matrix, dense array, or matvec callable.
    k:
        Number of eigenpairs wanted.
    which:
        ``"LA"`` for the algebraically largest eigenvalues, ``"SA"`` for
        the smallest.  (``"SA"`` is implemented by negating the operator —
        the same trick the paper uses when it feeds ``A - D`` to Lanczos
        to get the smallest eigenpairs of ``D - A``.)
    n:
        Matrix order; required only for callables.
    tol:
        Residual tolerance, relative to the spectral scale.
    max_steps:
        Krylov dimension cap; defaults to ``n`` (at which point, with full
        reorthogonalisation, the decomposition is exact).
    seed:
        Seed for the random starting vector, making runs reproducible.

    Raises
    ------
    SpectralError
        If the requested pairs do not converge within ``max_steps``.
    """
    if which not in ("LA", "SA"):
        raise SpectralError(f"which must be 'LA' or 'SA', got {which!r}")
    matvec, size = _as_matvec(operator, n)
    if k < 1:
        raise SpectralError(f"k must be >= 1, got {k}")
    if k > size:
        raise SpectralError(f"k={k} exceeds matrix order {size}")
    if which == "SA":
        inner = matvec
        matvec = lambda x: -inner(x)  # noqa: E731 - tiny adapter

    if max_steps is None:
        max_steps = size
    max_steps = min(max_steps, size)

    profiling = is_enabled()
    t_start = time.perf_counter() if profiling else 0.0
    # Residual-decay trace: (Krylov step, max Ritz residual) at every
    # convergence check, emitted as one point event after the solve so
    # the Kaniel–Paige–Saad decay curve is a reproducible artifact.
    conv_steps: list = []
    conv_residuals: list = []
    rng = np.random.default_rng(seed)
    basis = np.zeros((size, max_steps))
    alphas = np.zeros(max_steps)
    betas = np.zeros(max_steps)  # betas[j] links v_j and v_{j+1}

    vector = rng.standard_normal(size)
    vector /= np.linalg.norm(vector)
    basis[:, 0] = vector

    steps = 0
    check_every = max(2 * k, 10)
    blocks = 1
    result: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    for j in range(max_steps):
        w = matvec(basis[:, j])
        alphas[j] = float(basis[:, j] @ w)
        # Full reorthogonalisation against the entire basis (twice is
        # enough — "twice is enough" Kahan/Parlett rule).
        for _ in range(2):
            w -= basis[:, : j + 1] @ (basis[:, : j + 1].T @ w)
        beta = float(np.linalg.norm(w))
        steps = j + 1

        exhausted = steps == max_steps
        if beta < 1e-12:
            # Invariant subspace found.  A single Krylov block is blind
            # to eigenvalue multiplicity, so only accept after at least
            # k independent blocks (each restart reveals one more copy
            # of any multiple eigenvalue); otherwise restart with a
            # fresh random vector orthogonal to the current basis
            # (disconnected graphs land here).
            if steps >= k and blocks >= k:
                betas[j] = 0.0
                result = _ritz(basis, alphas, betas, steps, k)
                if profiling:
                    conv_steps.append(steps)
                    conv_residuals.append(
                        float(result[2].max(initial=0.0))
                    )
                converged = result[2].max(initial=0.0) <= _scale(result[0], tol)
                if converged or exhausted:
                    break
            restart = rng.standard_normal(size)
            for _ in range(2):
                restart -= basis[:, : j + 1] @ (basis[:, : j + 1].T @ restart)
            norm = np.linalg.norm(restart)
            if norm < 1e-9 or exhausted:
                # Basis spans the whole space already.
                betas[j] = 0.0
                result = _ritz(basis, alphas, betas, steps, k)
                break
            betas[j] = 0.0
            blocks += 1
            if j + 1 < max_steps:
                basis[:, j + 1] = restart / norm
            continue

        betas[j] = beta
        if j + 1 < max_steps:
            basis[:, j + 1] = w / beta

        if steps >= k and (steps % check_every == 0 or exhausted):
            result = _ritz(basis, alphas, betas, steps, k)
            if profiling:
                conv_steps.append(steps)
                conv_residuals.append(float(result[2].max(initial=0.0)))
            if result[2].max(initial=0.0) <= _scale(result[0], tol):
                break

    if result is None:
        result = _ritz(basis, alphas, betas, steps, k)
    eigenvalues, eigenvectors, residuals = result
    if residuals.max(initial=0.0) > _scale(eigenvalues, max(tol, 1e-6)) and (
        steps < size
    ):
        raise SpectralError(
            f"Lanczos did not converge in {steps} steps "
            f"(max residual {residuals.max():.2e})"
        )

    if which == "SA":
        eigenvalues = -eigenvalues
    order = np.argsort(eigenvalues)
    if profiling:
        incr("lanczos.solves")
        incr("lanczos.iterations", steps)
        incr("lanczos.restarts", blocks - 1)
        add_timing(
            "spectral.lanczos",
            time.perf_counter() - t_start,
            n=size,
            k=k,
            iterations=steps,
            restarts=blocks - 1,
        )
        emit(
            "spectral.lanczos",
            backend="own",
            n=size,
            k=k,
            iterations=steps,
            restarts=blocks - 1,
            max_residual=float(residuals.max(initial=0.0)),
        )
        final_residual = float(residuals.max(initial=0.0))
        if not conv_steps or conv_steps[-1] != steps:
            conv_steps.append(steps)
            conv_residuals.append(final_residual)
        else:
            conv_residuals[-1] = final_residual
        emit(
            "spectral.lanczos.convergence",
            n=size,
            k=k,
            steps=conv_steps,
            residuals=conv_residuals,
        )
    return LanczosResult(
        eigenvalues=eigenvalues[order],
        eigenvectors=eigenvectors[:, order],
        num_steps=steps,
        residuals=residuals[order],
    )


def _scale(eigenvalues: np.ndarray, tol: float) -> float:
    return tol * max(1.0, float(np.abs(eigenvalues).max(initial=1.0)))


def _ritz(
    basis: np.ndarray,
    alphas: np.ndarray,
    betas: np.ndarray,
    steps: int,
    k: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Extract the top-k Ritz pairs from the current tridiagonalisation."""
    diag = alphas[:steps]
    off = betas[: steps - 1] if steps > 1 else np.zeros(0)
    theta, s = sla.eigh_tridiagonal(diag, off)
    # Largest-k Ritz values (the operator is already negated for 'SA').
    take = np.argsort(theta)[-k:]
    theta_k = theta[take]
    s_k = s[:, take]
    vectors = basis[:, :steps] @ s_k
    # Residual norm of Ritz pair i is |beta_steps * s[last, i]|.
    edge_beta = betas[steps - 1] if steps - 1 < len(betas) else 0.0
    residuals = np.abs(edge_beta * s_k[-1, :])
    # Normalise vectors defensively (should already be unit length).
    norms = np.linalg.norm(vectors, axis=0)
    norms[norms == 0] = 1.0
    vectors = vectors / norms
    return theta_k, vectors, residuals
