"""Spectral engine: Lanczos, Fiedler vectors, orderings and split sweeps.

Implements the numerical machinery of Sections 1.1 and 3 of the paper: the
second-smallest eigenpair of the Laplacian ``Q = D - A`` (via our own
fully-reorthogonalised Lanczos or scipy's ``eigsh``), the linear vertex
orderings it induces, incremental evaluation of all prefix splits, and
Hall's quadratic placement (Appendix A).
"""

from .fiedler import (
    FiedlerResult,
    component_spectral_values,
    fiedler_vector,
    nontrivial_eigenvectors,
)
from .hall import HallPlacement, hall_placement, quadratic_wirelength
from .lanczos import LanczosResult, lanczos_extreme
from .ordering import ordering_from_values, spectral_ordering
from .rqi import RQIResult, rayleigh_quotient_iteration
from .splits import SplitPoint, SplitSweep, sweep_module_splits

__all__ = [
    "FiedlerResult",
    "HallPlacement",
    "LanczosResult",
    "SplitPoint",
    "SplitSweep",
    "component_spectral_values",
    "fiedler_vector",
    "hall_placement",
    "lanczos_extreme",
    "nontrivial_eigenvectors",
    "ordering_from_values",
    "quadratic_wirelength",
    "rayleigh_quotient_iteration",
    "RQIResult",
    "spectral_ordering",
    "sweep_module_splits",
]
