"""Command-line interface: partition a netlist file.

Examples
--------
Partition a NET-format netlist with IG-Match and print the result::

    repro-partition circuit.net
    python -m repro circuit.net --algorithm rcut --restarts 10

Generate a synthetic benchmark, save it, then partition it::

    python -m repro --generate Test05 --save test05.net
    python -m repro test05.net --algorithm ig-vote
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Optional, Sequence

from . import obs
from .bench import build_circuit, spec_names
from .core import CORES, set_core
from .errors import ReproError
from .hypergraph import Hypergraph, describe, load_json, load_net, save_net
from .partitioning import PartitionResult
from .parallel import BACKENDS, ParallelConfig, resolve_parallel

__all__ = ["main"]

_ALGORITHMS = (
    "ig-match",
    "ig-vote",
    "eig1",
    "rcut",
    "fm",
    "kl",
    "anneal",
    "multilevel",
    "spectral-kway",
)


_SUPPORTED_SUFFIXES = (".net", ".json", ".hgr", ".v")


def _load(path: str) -> Hypergraph:
    file = Path(path)
    suffix = file.suffix.lower()
    if suffix == ".json":
        return load_json(file)
    if suffix == ".hgr":
        from .hypergraph import load_hgr

        return load_hgr(file)
    if suffix == ".v":
        from .hypergraph import load_verilog

        return load_verilog(file)
    if suffix == ".net":
        return load_net(file)
    raise ReproError(
        f"unsupported netlist extension {file.suffix!r} for {path}; "
        f"supported extensions: {', '.join(_SUPPORTED_SUFFIXES)}"
    )


def _version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # pragma: no cover - metadata missing
        from . import __version__

        return __version__


def _request(
    algorithm: str, seed: int, restarts: int, stride: int, starts: int = 1
):
    """Build the frozen service request for the given CLI knobs."""
    from .service import PartitionRequest

    return PartitionRequest(
        algorithm=algorithm,
        seed=seed,
        restarts=restarts,
        split_stride=stride,
        starts=starts,
    )


def _run_algorithm(
    h: Hypergraph,
    algorithm: str,
    seed: int,
    restarts: int,
    stride: int,
    starts: int = 1,
    parallel: Optional[ParallelConfig] = None,
) -> PartitionResult:
    """Direct (uncached) dispatch; the service engine owns the mapping
    from request to algorithm, so CLI and HTTP runs share one code path."""
    from .service import run_partitioner

    return run_partitioner(
        h,
        _request(algorithm, seed, restarts, stride, starts),
        parallel=parallel,
    )


def _run_multiway(h: Hypergraph, args) -> int:
    """Handle k-way requests (--blocks > 2 or -a spectral-kway)."""
    from .partitioning import (
        SpectralKWayConfig,
        recursive_partition,
        scaled_cost,
        spectral_kway,
    )

    k = max(2, args.blocks)
    if args.algorithm == "spectral-kway":
        result = spectral_kway(h, k, SpectralKWayConfig(seed=args.seed))
        label = "spectral-kway"
    else:

        def bipartitioner(sub):
            return _run_algorithm(
                sub, args.algorithm, args.seed, args.restarts,
                args.stride, args.starts,
                resolve_parallel(args.workers, args.backend),
            )

        result = recursive_partition(h, k, bipartitioner=bipartitioner)
        label = f"recursive {args.algorithm}"

    cost = scaled_cost(h, result.block_of, result.num_blocks)
    payload = {
        "algorithm": label,
        "blocks": result.num_blocks,
        "block_sizes": result.block_sizes,
        "nets_cut": result.nets_cut,
        "scaled_cost": cost,
        "seconds": round(result.elapsed_seconds, 3),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"{label}: {result.num_blocks} blocks "
            f"{result.block_sizes}, {result.nets_cut} nets cut, "
            f"scaled cost {cost:.4e} "
            f"({result.elapsed_seconds:.2f}s)"
        )
    if args.sides_out:
        lines = [
            f"{h.module_name(v)} {result.block_of[v]}"
            for v in range(h.num_modules)
        ]
        Path(args.sides_out).write_text(
            "\n".join(lines) + "\n", encoding="utf-8"
        )
        print(f"wrote blocks to {args.sides_out}", file=sys.stderr)
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-partition",
        description="Ratio-cut netlist partitioning "
        "(IG-Match and baselines).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    parser.add_argument(
        "netlist", nargs="?",
        help="input netlist (.net text format, .hgr hMETIS, or .json)",
    )
    parser.add_argument(
        "--blocks", "-k", type=int, default=2,
        help="number of blocks (k > 2 uses recursive bipartition with "
        "the chosen algorithm, or direct spectral k-way with "
        "-a spectral-kway)",
    )
    parser.add_argument(
        "--algorithm", "-a", choices=_ALGORITHMS, default="ig-match",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--restarts", type=int, default=10, help="RCut random restarts"
    )
    parser.add_argument(
        "--stride", type=int, default=1,
        help="IG-Match split stride (1 = all splits)",
    )
    parser.add_argument(
        "--starts", type=int, default=1,
        help="FM multi-start runs (best cut wins; default 1)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker pool size for parallel fan-outs (restarts, "
        "multi-starts, candidate orderings); 0 = auto-detect CPUs; "
        "default: $REPRO_WORKERS or 1.  Results are identical for "
        "any worker count",
    )
    parser.add_argument(
        "--core", choices=CORES, default=None,
        help="hypergraph core representation: dict (reference) or csr "
        "(vectorised flat arrays).  Results are bit-identical either "
        "way; default: $REPRO_CORE or dict",
    )
    parser.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="parallel backend (default: $REPRO_BACKEND, or process "
        "when --workers > 1)",
    )
    parser.add_argument(
        "--generate", metavar="BENCHMARK", choices=spec_names(),
        help="generate a synthetic benchmark instead of reading a file",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="scale factor for --generate",
    )
    parser.add_argument(
        "--save", metavar="PATH",
        help="write the (generated or loaded) netlist to a .net file",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print netlist statistics before partitioning",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the result as JSON",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="print a full partition report (cut nets, boundary "
        "modules, cut histogram)",
    )
    parser.add_argument(
        "--replicate", type=float, metavar="FRACTION", default=None,
        help="after partitioning, greedily replicate up to FRACTION of "
        "the modules to reduce the cut (bipartition only)",
    )
    parser.add_argument(
        "--sides-out", metavar="PATH",
        help="write one '<module-name> <side>' line per module",
    )
    parser.add_argument(
        "--delta", metavar="FILE",
        help="apply a netlist delta (repro-netlist-delta-v1 JSON) to "
        "the base netlist and partition the edited netlist warm: the "
        "base is partitioned cold to seed warm-start artifacts, then "
        "the delta path reuses the intersection graph, sweep window, "
        "and matching (ig-match) or the gain structures (fm)",
    )
    parser.add_argument(
        "--base", metavar="FILE",
        help="with --delta: the base netlist file the delta applies to "
        "(defaults to the positional netlist)",
    )
    parser.add_argument(
        "--fingerprint", action="store_true",
        help="print the netlist's canonical (relabeling-invariant) "
        "content fingerprint and exit without partitioning; with "
        "--json, also print the exact (label-sensitive) hash that "
        "keys the result cache",
    )
    cache_group = parser.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--cache", action="store_true",
        help="serve the request through the content-addressed result "
        "cache (in-memory + disk under $REPRO_CACHE_DIR or "
        "~/.cache/repro); repeated identical requests skip the "
        "partitioner entirely",
    )
    cache_group.add_argument(
        "--no-cache", action="store_true",
        help="explicitly bypass the result cache (the default)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="override the disk cache directory for --cache",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="collect per-phase timings/counters and print the phase "
        "tree to stderr after the run",
    )
    parser.add_argument(
        "--profile-mem", action="store_true",
        help="also attribute Python-heap memory to each phase "
        "(tracemalloc): the --profile tree gains Δ net-alloc / ^ peak "
        "columns, span events in --trace-json carry mem_alloc_bytes / "
        "mem_peak_bytes, and a final mem.profile event records the RSS "
        "high-water mark.  Implies --profile when no trace output is "
        "requested",
    )
    parser.add_argument(
        "--trace-json", metavar="PATH",
        help="write structured JSON-lines trace events (spans, points, "
        "counters) to PATH",
    )
    parser.add_argument(
        "--trace-html", metavar="PATH",
        help="render the run's trace as a self-contained HTML report "
        "(phase-tree flame view, convergence curves, counters)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.core:
        # Install for this process and export for process-pool
        # workers (results are core-independent; the env var only
        # keeps the workers on the same fast path).
        set_core(args.core)
        os.environ["REPRO_CORE"] = args.core

    if args.profile_mem and not (args.trace_json or args.trace_html):
        # Memory attribution with no trace output means the user wants
        # the annotated phase tree.
        args.profile = True
    profiling = bool(args.profile or args.trace_json or args.trace_html)
    html_sink = None
    sampler = None
    if profiling:
        sink = None
        if args.trace_json:
            try:
                sink = obs.JsonLinesSink(args.trace_json)
            except OSError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
        obs.enable(sink=sink)
        if args.profile_mem:
            obs.enable_memprof()
            sampler = obs.RssSampler()
            sampler.start()
        if args.trace_html:
            html_sink = obs.MemorySink()
            obs.STATE.sinks.append(html_sink)
        obs.emit(
            "cli.run",
            algorithm=args.algorithm,
            blocks=args.blocks,
            seed=args.seed,
        )
    try:
        return _execute(args, parser)
    finally:
        if profiling:
            if sampler is not None:
                sampler.stop()
                obs.emit("mem.profile", **obs.memory_snapshot(),
                         rss_high_water_bytes=sampler.high_water_bytes)
            if args.profile:
                print(obs.phase_report(), file=sys.stderr)
                if args.profile_mem and sampler is not None:
                    print(
                        "rss high water: "
                        + obs.human_bytes(sampler.high_water_bytes),
                        file=sys.stderr,
                    )
            obs.disable()
            if args.trace_json:
                print(
                    f"wrote trace events to {args.trace_json}",
                    file=sys.stderr,
                )
            if html_sink is not None:
                try:
                    Path(args.trace_html).write_text(
                        obs.render_trace_html(
                            html_sink.events,
                            title=f"repro trace — {args.algorithm}",
                        ),
                        encoding="utf-8",
                    )
                except OSError as exc:
                    print(f"error: {exc}", file=sys.stderr)
                else:
                    print(
                        f"wrote trace report to {args.trace_html}",
                        file=sys.stderr,
                    )


def _run_delta_path(h: Hypergraph, args):
    """Cold-partition the base, then serve ``--delta`` warm against it.

    Returns ``(edited_hypergraph, warm_result)``; the caller's normal
    output paths (--json/--report/--sides-out) then apply to the edited
    netlist's result.
    """
    from .delta import load_delta, seed_artifacts, warm_partition
    from .service import run_partitioner
    from .service.engine import result_to_payload

    request = _request(
        args.algorithm, args.seed, args.restarts, args.stride, args.starts
    )
    parallel = resolve_parallel(args.workers, args.backend)
    capture: dict = {}
    base_result = run_partitioner(
        h, request, parallel=parallel, capture=capture
    )
    artifacts = seed_artifacts(
        h, result_to_payload(base_result), request.algorithm, capture
    )
    delta = load_delta(args.delta)
    application = delta.apply_detailed(h)
    result, _fresh, warm = warm_partition(
        h, artifacts, application, request, parallel=parallel
    )
    edited = application.hypergraph
    print(
        f"base {h.num_modules}m/{h.num_nets}n ratio "
        f"{base_result.ratio_cut:.6g} -> delta "
        f"{edited.num_modules}m/{edited.num_nets}n "
        f"({'warm' if warm else 'cold fallback'})",
        file=sys.stderr,
    )
    return edited, result


def _execute(args, parser: argparse.ArgumentParser) -> int:
    try:
        if args.base and not args.delta:
            parser.error("--base requires --delta")
            return 2
        if args.generate:
            h = build_circuit(args.generate, seed=args.seed, scale=args.scale)
        elif args.delta and args.base:
            h = _load(args.base)
        elif args.netlist:
            h = _load(args.netlist)
        else:
            parser.error("give a netlist file or --generate BENCHMARK")
            return 2

        if args.save:
            save_net(h, args.save)
            print(f"wrote {h.num_nets} nets to {args.save}", file=sys.stderr)

        if args.stats:
            print(describe(h))
            print()

        if args.fingerprint:
            from .service import canonical_fingerprint, exact_fingerprint

            if args.json:
                print(
                    json.dumps(
                        {
                            "canonical": canonical_fingerprint(h),
                            "exact": exact_fingerprint(h),
                        },
                        indent=2,
                    )
                )
            else:
                print(canonical_fingerprint(h))
            return 0

        if args.blocks > 2 or args.algorithm == "spectral-kway":
            if args.delta:
                print(
                    "error: --delta supports bipartitioning "
                    "algorithms only",
                    file=sys.stderr,
                )
                return 2
            return _run_multiway(h, args)

        if args.delta:
            if args.cache:
                print(
                    "error: --delta bypasses the result cache "
                    "(drop --cache)",
                    file=sys.stderr,
                )
                return 2
            h, result = _run_delta_path(h, args)
        elif args.cache:
            from .service import (
                PartitionEngine,
                ResultCache,
            )

            engine = PartitionEngine(
                cache=ResultCache(disk_dir=args.cache_dir),
                parallel=resolve_parallel(args.workers, args.backend),
            )
            served = engine.partition(
                h,
                _request(
                    args.algorithm, args.seed, args.restarts,
                    args.stride, args.starts,
                ),
            )
            print(
                f"cache {'hit (' + served.source + ')' if served.cached else 'miss'} "
                f"{served.fingerprint[:12]} trace {served.trace_id}",
                file=sys.stderr,
            )
            result = served.result
        else:
            result = _run_algorithm(
                h, args.algorithm, args.seed, args.restarts, args.stride,
                args.starts, resolve_parallel(args.workers, args.backend),
            )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.replicate is not None:
        from .partitioning import replicate_for_cut

        try:
            replication = replicate_for_cut(
                result, max_fraction=args.replicate
            )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(replication)

    if args.json:
        payload = result.row()
        payload["details"] = {
            k: v for k, v in result.details.items()
            if isinstance(v, (int, float, str, bool))
        }
        print(json.dumps(payload, indent=2))
    elif args.report:
        from .partitioning import partition_report

        print(partition_report(result))
    else:
        print(result)

    if args.sides_out:
        lines = [
            f"{h.module_name(v)} {result.partition.side(v)}"
            for v in range(h.num_modules)
        ]
        Path(args.sides_out).write_text(
            "\n".join(lines) + "\n", encoding="utf-8"
        )
        print(f"wrote sides to {args.sides_out}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
