"""The hMETIS ``.hgr`` hypergraph format.

The de-facto standard exchange format for hypergraph partitioning
benchmarks (hMETIS, KaHyPar, the ISPD98 circuit suite all speak it):

* first non-comment line: ``<num_nets> <num_vertices> [fmt]``
* then one line per net listing its pins as **1-indexed** vertex ids
* ``fmt`` flags: ``1`` — each net line starts with a net weight;
  ``10`` — after the net lines, one line per vertex with its weight;
  ``11`` — both.
* ``%`` starts a comment line.

Net weights map to :meth:`Hypergraph.net_weight` (the paper's
algorithms count nets, but the weighted cut metrics and file
round-trips preserve them); vertex weights map to module areas.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from ...errors import ParseError
from ..hypergraph import Hypergraph

__all__ = ["loads_hgr", "dumps_hgr", "load_hgr", "save_hgr"]

PathLike = Union[str, Path]


def loads_hgr(text: str, name: str = "") -> Hypergraph:
    """Parse hMETIS ``.hgr`` text into a hypergraph."""
    lines = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if stripped and not stripped.startswith("%"):
            lines.append((lineno, stripped))
    if not lines:
        raise ParseError("empty .hgr file")

    header_line, header = lines[0]
    fields = header.split()
    if len(fields) not in (2, 3):
        raise ParseError(
            "header must be '<nets> <vertices> [fmt]'", line=header_line
        )
    try:
        num_nets = int(fields[0])
        num_vertices = int(fields[1])
        fmt = int(fields[2]) if len(fields) == 3 else 0
    except ValueError:
        raise ParseError(
            f"non-integer header field in {header!r}", line=header_line
        ) from None
    if fmt not in (0, 1, 10, 11):
        raise ParseError(f"unsupported fmt code {fmt}", line=header_line)
    has_net_weights = fmt in (1, 11)
    has_vertex_weights = fmt in (10, 11)

    body = lines[1:]
    expected = num_nets + (num_vertices if has_vertex_weights else 0)
    if len(body) != expected:
        raise ParseError(
            f"expected {expected} data lines "
            f"({num_nets} nets"
            + (f" + {num_vertices} vertex weights" if has_vertex_weights
               else "")
            + f"), found {len(body)}"
        )

    nets: List[List[int]] = []
    net_weights: Optional[List[float]] = [] if has_net_weights else None
    for lineno, line in body[:num_nets]:
        try:
            numbers = [int(tok) for tok in line.split()]
        except ValueError:
            raise ParseError(
                f"non-integer pin in {line!r}", line=lineno
            ) from None
        if net_weights is not None:
            if len(numbers) < 2:
                raise ParseError(
                    "weighted net line needs a weight and >= 1 pin",
                    line=lineno,
                )
            net_weights.append(float(numbers[0]))
            numbers = numbers[1:]
        pins = []
        for pin in numbers:
            if not 1 <= pin <= num_vertices:
                raise ParseError(
                    f"pin {pin} out of range 1..{num_vertices}",
                    line=lineno,
                )
            pins.append(pin - 1)
        nets.append(pins)

    areas: Optional[List[float]] = None
    if has_vertex_weights:
        areas = []
        for lineno, line in body[num_nets:]:
            try:
                areas.append(float(line.split()[0]))
            except (ValueError, IndexError):
                raise ParseError(
                    f"bad vertex weight line {line!r}", line=lineno
                ) from None

    return Hypergraph(
        nets,
        num_modules=num_vertices,
        module_areas=areas,
        net_weights=net_weights,
        name=name,
    )


def _integral(value: float, what: str) -> int:
    if value != int(value):
        raise ParseError(
            f".hgr {what} must be integers; got {value}"
        )
    return int(value)


def dumps_hgr(h: Hypergraph) -> str:
    """Render a hypergraph as hMETIS ``.hgr`` text.

    Module areas are emitted as vertex weights and explicit net weights
    as net weights (fmt 1/10/11 accordingly); both must be integral,
    per the format.
    """
    vertex_weighted = any(a != 1.0 for a in h.module_areas)
    net_weighted = h.has_net_weights
    fmt = (1 if net_weighted else 0) + (10 if vertex_weighted else 0)
    lines = [f"% {h.name or 'hypergraph'}: {h.num_nets} nets, "
             f"{h.num_modules} vertices"]
    lines.append(
        f"{h.num_nets} {h.num_modules}" + (f" {fmt}" if fmt else "")
    )
    for j in range(h.num_nets):
        pins = " ".join(str(p + 1) for p in h.pins(j))
        if net_weighted:
            weight = _integral(h.net_weight(j), "net weights")
            lines.append(f"{weight} {pins}")
        else:
            lines.append(pins)
    if vertex_weighted:
        for v in range(h.num_modules):
            lines.append(
                str(_integral(h.module_area(v), "vertex weights"))
            )
    return "\n".join(lines) + "\n"


def load_hgr(path: PathLike) -> Hypergraph:
    """Read an hMETIS ``.hgr`` file."""
    path = Path(path)
    return loads_hgr(path.read_text(encoding="utf-8"), name=path.stem)


def save_hgr(h: Hypergraph, path: PathLike) -> None:
    """Write an hMETIS ``.hgr`` file."""
    Path(path).write_text(dumps_hgr(h), encoding="utf-8")
