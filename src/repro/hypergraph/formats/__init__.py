"""Industry netlist exchange formats.

* :mod:`repro.hypergraph.formats.hmetis` — the hMETIS ``.hgr`` format
  (ISPD98 suite, hMETIS, KaHyPar);
* :mod:`repro.hypergraph.formats.bookshelf` — the GSRC Bookshelf
  ``.nodes``/``.nets`` pair.
"""

from .bookshelf import (
    dumps_bookshelf,
    load_bookshelf,
    loads_bookshelf,
    save_bookshelf,
)
from .hmetis import dumps_hgr, load_hgr, loads_hgr, save_hgr
from .verilog import (
    dumps_verilog,
    load_verilog,
    loads_verilog,
    save_verilog,
)

__all__ = [
    "dumps_bookshelf",
    "dumps_hgr",
    "dumps_verilog",
    "load_bookshelf",
    "load_hgr",
    "load_verilog",
    "loads_bookshelf",
    "loads_hgr",
    "loads_verilog",
    "save_bookshelf",
    "save_hgr",
    "save_verilog",
]
