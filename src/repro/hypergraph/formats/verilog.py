"""A structural-Verilog front-end.

The paper's benchmark circuits are gate-level designs; this module lets
the library ingest the common interchange form for such designs — a
*structural* Verilog subset (one module, scalar nets, primitive or
named-cell instantiations):

.. code-block:: verilog

    // half adder
    module half_adder (a, b, sum, carry);
      input a, b;
      output sum, carry;
      wire w1;
      xor g1 (sum, a, b);
      and g2 (carry, a, b);
    endmodule

Mapping to the netlist hypergraph:

* every *gate instance* becomes a module (area 1);
* every top-level port becomes a pad module (area 0) so I/O connectivity
  is preserved — pads are modules too, as in the MCNC netlists;
* every declared net (ports and wires) becomes a hyperedge over the
  instances/pads that reference it; unconnected nets are dropped.

Out of scope (rejected with a clear error): vectors (``[3:0]``),
``assign``, behavioural blocks, parameters, and multiple modules per
file.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Set, Tuple, Union

from ...errors import ParseError
from ..builder import HypergraphBuilder
from ..hypergraph import Hypergraph

__all__ = ["loads_verilog", "load_verilog", "dumps_verilog",
           "save_verilog"]

PathLike = Union[str, Path]

_IDENT = r"[A-Za-z_][A-Za-z0-9_$]*"
_IDENT_RE = re.compile(_IDENT)

_UNSUPPORTED = (
    "assign", "always", "initial", "parameter", "generate", "function",
    "task",
)


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    text = re.sub(r"//[^\n]*", " ", text)
    return text


def _statements(text: str) -> List[str]:
    """Split on ';', keeping 'module ... ;' and 'endmodule' separate."""
    out = []
    for chunk in text.split(";"):
        stripped = " ".join(chunk.split())
        if stripped:
            out.append(stripped)
    return out


def _split_identifiers(body: str, what: str) -> List[str]:
    names = [tok.strip() for tok in body.split(",")]
    for name in names:
        if not re.fullmatch(_IDENT, name):
            raise ParseError(
                f"bad {what} name {name!r} (vectors and expressions "
                "are not supported)"
            )
    return names


def loads_verilog(text: str, name: str = "") -> Hypergraph:
    """Parse one structural Verilog module into a hypergraph."""
    text = _strip_comments(text)
    if "[" in text or "]" in text:
        raise ParseError(
            "vector nets ([msb:lsb]) are not supported by the "
            "structural subset"
        )
    statements = _statements(text)
    if not statements:
        raise ParseError("empty Verilog source")

    module_name = ""
    ports: List[str] = []
    declared: Set[str] = set()
    port_dirs: Dict[str, str] = {}
    instances: List[Tuple[str, str, List[str]]] = []
    saw_module = False
    saw_endmodule = False

    for statement in statements:
        first = statement.split()[0]
        if first in _UNSUPPORTED:
            raise ParseError(
                f"unsupported construct {first!r}: only structural "
                "netlists (declarations + instantiations) are accepted"
            )
        if first == "module":
            if saw_module:
                raise ParseError("multiple modules per file not supported")
            saw_module = True
            match = re.fullmatch(
                rf"module\s+({_IDENT})\s*(?:\(([^)]*)\))?", statement
            )
            if not match:
                raise ParseError(f"bad module header: {statement!r}")
            module_name = match.group(1)
            if match.group(2) and match.group(2).strip():
                ports = _split_identifiers(match.group(2), "port")
                declared.update(ports)
            continue
        if statement == "endmodule" or statement.startswith("endmodule"):
            saw_endmodule = True
            continue
        if not saw_module:
            raise ParseError(
                f"statement before 'module': {statement!r}"
            )
        if first in ("input", "output", "inout", "wire"):
            body = statement[len(first):].strip()
            if not body:
                raise ParseError(f"empty {first} declaration")
            names = _split_identifiers(body, first)
            declared.update(names)
            if first != "wire":
                for port in names:
                    port_dirs[port] = first
            continue
        # Gate / cell instantiation: <type> <name> ( net, net, ... )
        match = re.fullmatch(
            rf"({_IDENT})\s+({_IDENT})\s*\(([^)]*)\)", statement
        )
        if not match:
            raise ParseError(f"unrecognised statement: {statement!r}")
        cell_type, instance_name, pin_body = match.groups()
        if "." in pin_body:
            raise ParseError(
                "named port connections (.port(net)) are not supported; "
                "use positional connections"
            )
        pins = _split_identifiers(pin_body, "connection")
        instances.append((cell_type, instance_name, pins))

    if not saw_module:
        raise ParseError("no 'module' statement found")
    if not saw_endmodule:
        raise ParseError("missing 'endmodule'")
    if not instances:
        raise ParseError(f"module {module_name!r} has no instances")

    builder = HypergraphBuilder()
    # Pads first (stable indices), then gate instances.
    for port in ports:
        builder.add_module(f"pad:{port}", area=0.0)
    for _, instance_name, _ in instances:
        if builder.has_module(instance_name):
            raise ParseError(
                f"duplicate instance name {instance_name!r}"
            )
        builder.add_module(instance_name, area=1.0)

    connections: Dict[str, List[int]] = {}
    for port in ports:
        connections.setdefault(port, []).append(
            builder.module_index(f"pad:{port}")
        )
    for cell_type, instance_name, pins in instances:
        index = builder.module_index(instance_name)
        for net in pins:
            if net not in declared:
                raise ParseError(
                    f"instance {instance_name!r} references undeclared "
                    f"net {net!r}"
                )
            connections.setdefault(net, []).append(index)

    for net_name in sorted(connections):
        pins = sorted(set(connections[net_name]))
        if len(pins) >= 2:
            builder.add_net(pins, name=net_name)
    return builder.build(name=name or module_name)


def load_verilog(path: PathLike) -> Hypergraph:
    """Read a structural Verilog file."""
    path = Path(path)
    return loads_verilog(path.read_text(encoding="utf-8"), name=path.stem)


def dumps_verilog(h: Hypergraph, module_name: str = "") -> str:
    """Render a hypergraph as a generic structural Verilog netlist.

    Every module becomes a ``cell`` instance whose positional pins are
    its incident nets — a lossy but valid structural view (gate types
    are not stored in the hypergraph).
    """
    def sanitize(token: str) -> str:
        return re.sub(r"\W+", "_", token)

    module_name = module_name or sanitize(h.name or "netlist") or "netlist"
    lines = [f"module {module_name} ();"]
    for j in range(h.num_nets):
        net = sanitize(h.net_name(j))
        lines.append(f"  wire {net};")
    for v in range(h.num_modules):
        nets = ", ".join(sanitize(h.net_name(j)) for j in h.nets_of(v))
        safe = sanitize(h.module_name(v))
        lines.append(f"  cell {safe} ({nets});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def save_verilog(
    h: Hypergraph, path: PathLike, module_name: str = ""
) -> None:
    """Write a structural Verilog view of ``h``."""
    Path(path).write_text(
        dumps_verilog(h, module_name), encoding="utf-8"
    )
