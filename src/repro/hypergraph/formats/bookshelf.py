"""The GSRC Bookshelf netlist format (``.nodes`` + ``.nets``).

The placement-community exchange format that superseded the raw MCNC
files.  The subset implemented here covers the netlist content:

``.nodes``::

    UCLA nodes 1.0
    # comments
    NumNodes      : <n>
    NumTerminals  : <t>
        <name> <width> <height> [terminal]

``.nets``::

    UCLA nets 1.0
    NumNets : <m>
    NumPins : <p>
    NetDegree : <k> [net_name]
        <node_name> <I|O|B> [: <x_off> <y_off>]

Pin directions and offsets are parsed and discarded (partitioning sees
only the hypergraph); node ``width*height`` becomes the module area,
with zero-area terminals normalised to area 0.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple, Union

from ...errors import ParseError
from ..builder import HypergraphBuilder
from ..hypergraph import Hypergraph

__all__ = [
    "loads_bookshelf",
    "dumps_bookshelf",
    "load_bookshelf",
    "save_bookshelf",
]

PathLike = Union[str, Path]


def _content_lines(text: str):
    for lineno, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.split("#", 1)[0].strip()
        if stripped:
            yield lineno, stripped


def _parse_count(line: str, key: str, lineno: int) -> int:
    parts = line.replace(":", " : ").split(":")
    if len(parts) != 2 or parts[0].strip() != key:
        raise ParseError(f"expected '{key} : <count>'", line=lineno)
    try:
        return int(parts[1].strip())
    except ValueError:
        raise ParseError(
            f"bad count in {line!r}", line=lineno
        ) from None


def _parse_nodes(text: str) -> List[Tuple[str, float, bool]]:
    """Parse a .nodes file into (name, area, is_terminal) triples."""
    lines = list(_content_lines(text))
    if not lines or not lines[0][1].startswith("UCLA nodes"):
        raise ParseError("missing 'UCLA nodes' header in .nodes file")
    body = lines[1:]
    if len(body) < 2:
        raise ParseError("truncated .nodes file")
    num_nodes = _parse_count(body[0][1], "NumNodes", body[0][0])
    _parse_count(body[1][1], "NumTerminals", body[1][0])

    nodes: List[Tuple[str, float, bool]] = []
    for lineno, line in body[2:]:
        fields = line.split()
        if len(fields) not in (3, 4):
            raise ParseError(
                "expected '<name> <width> <height> [terminal]'",
                line=lineno,
            )
        name = fields[0]
        try:
            width = float(fields[1])
            height = float(fields[2])
        except ValueError:
            raise ParseError(
                f"bad node dimensions in {line!r}", line=lineno
            ) from None
        is_terminal = len(fields) == 4
        if is_terminal and fields[3] != "terminal":
            raise ParseError(
                f"unexpected trailing token {fields[3]!r}", line=lineno
            )
        nodes.append((name, width * height, is_terminal))
    if len(nodes) != num_nodes:
        raise ParseError(
            f"NumNodes says {num_nodes}, found {len(nodes)} node lines"
        )
    return nodes


def loads_bookshelf(
    nodes_text: str, nets_text: str, name: str = ""
) -> Hypergraph:
    """Build a hypergraph from ``.nodes`` + ``.nets`` file contents."""
    builder = HypergraphBuilder()
    for node_name, area, _ in _parse_nodes(nodes_text):
        builder.add_module(node_name, area=area)

    lines = list(_content_lines(nets_text))
    if not lines or not lines[0][1].startswith("UCLA nets"):
        raise ParseError("missing 'UCLA nets' header in .nets file")
    body = lines[1:]
    if len(body) < 2:
        raise ParseError("truncated .nets file")
    num_nets = _parse_count(body[0][1], "NumNets", body[0][0])
    num_pins = _parse_count(body[1][1], "NumPins", body[1][0])

    index = 2
    nets_read = 0
    pins_read = 0
    while index < len(body):
        lineno, line = body[index]
        if not line.startswith("NetDegree"):
            raise ParseError(
                f"expected 'NetDegree : <k>', got {line!r}", line=lineno
            )
        after = line.split(":", 1)[1].split()
        if not after:
            raise ParseError("NetDegree missing a count", line=lineno)
        try:
            degree = int(after[0])
        except ValueError:
            raise ParseError(
                f"bad NetDegree {after[0]!r}", line=lineno
            ) from None
        net_name = after[1] if len(after) > 1 else f"net{nets_read}"
        pins = []
        for offset in range(degree):
            pin_index = index + 1 + offset
            if pin_index >= len(body):
                raise ParseError(
                    f"net {net_name!r} declares {degree} pins but the "
                    "file ends early",
                    line=lineno,
                )
            pin_lineno, pin_line = body[pin_index]
            fields = pin_line.split()
            node_name = fields[0]
            if not builder.has_module(node_name):
                raise ParseError(
                    f"net {net_name!r} references unknown node "
                    f"{node_name!r}",
                    line=pin_lineno,
                )
            pins.append(builder.module_index(node_name))
        builder.add_net(pins, name=net_name)
        nets_read += 1
        pins_read += degree
        index += 1 + degree

    if nets_read != num_nets:
        raise ParseError(
            f"NumNets says {num_nets}, found {nets_read} NetDegree blocks"
        )
    if pins_read != num_pins:
        raise ParseError(
            f"NumPins says {num_pins}, counted {pins_read}"
        )
    return builder.build(name=name)


def dumps_bookshelf(h: Hypergraph) -> Tuple[str, str]:
    """Render ``(nodes_text, nets_text)`` for a hypergraph.

    Areas are emitted as ``<area> 1`` width/height pairs.
    """
    node_lines = [
        "UCLA nodes 1.0",
        f"NumNodes : {h.num_modules}",
        "NumTerminals : 0",
    ]
    for v in range(h.num_modules):
        node_lines.append(
            f"    {h.module_name(v)} {h.module_area(v):g} 1"
        )

    net_lines = [
        "UCLA nets 1.0",
        f"NumNets : {h.num_nets}",
        f"NumPins : {h.num_pins}",
    ]
    for j in range(h.num_nets):
        pins = h.pins(j)
        net_lines.append(f"NetDegree : {len(pins)} {h.net_name(j)}")
        for p in pins:
            net_lines.append(f"    {h.module_name(p)} B")
    return (
        "\n".join(node_lines) + "\n",
        "\n".join(net_lines) + "\n",
    )


def load_bookshelf(
    nodes_path: PathLike, nets_path: PathLike
) -> Hypergraph:
    """Read a Bookshelf ``.nodes``/``.nets`` pair."""
    nodes_path = Path(nodes_path)
    nets_path = Path(nets_path)
    return loads_bookshelf(
        nodes_path.read_text(encoding="utf-8"),
        nets_path.read_text(encoding="utf-8"),
        name=nets_path.stem,
    )


def save_bookshelf(
    h: Hypergraph, nodes_path: PathLike, nets_path: PathLike
) -> None:
    """Write a Bookshelf ``.nodes``/``.nets`` pair."""
    nodes_text, nets_text = dumps_bookshelf(h)
    Path(nodes_path).write_text(nodes_text, encoding="utf-8")
    Path(nets_path).write_text(nets_text, encoding="utf-8")
