"""Flat CSR incidence arrays — the million-module substrate.

:class:`CsrHypergraph` stores **both** incidence directions of a
hypergraph as compressed sparse rows:

* net → modules (the pin lists): ``net_indptr`` / ``net_indices``;
* module → nets (the transpose): ``module_indptr`` / ``module_indices``;

plus float64 ``module_areas`` and (optional) ``net_weights`` vectors.
All arrays are int64/float64 numpy and frozen (``writeable=False``),
so a ``CsrHypergraph`` can be shared across threads and cached on its
source :class:`Hypergraph` without defensive copies.

Conversion is exact and lossless in both directions:
``CsrHypergraph.from_hypergraph(h).to_hypergraph() == h`` for every
valid hypergraph, including empty nets, isolated modules, names, areas,
and explicit net weights (the *absence* of explicit weights is
preserved too).  Construction cost is O(pins): one pass per direction.

Direct construction cross-validates the two directions — every
(module, net) pin must appear in both — and rejects inconsistencies
with a :class:`~repro.errors.HypergraphError` naming the offending
module and net, rather than surfacing later as a numpy index error.
"""

from __future__ import annotations

from itertools import chain
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import HypergraphError
from .hypergraph import Hypergraph
from .validate import find_incidence_mismatch

__all__ = ["CsrHypergraph"]


def _frozen(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


def _as_indptr(values: Sequence[int], what: str) -> np.ndarray:
    arr = np.ascontiguousarray(values, dtype=np.int64)
    if arr.ndim != 1 or arr.size == 0 or arr[0] != 0:
        raise HypergraphError(
            f"{what} must be a 1-D int array starting at 0"
        )
    if np.any(np.diff(arr) < 0):
        raise HypergraphError(f"{what} must be non-decreasing")
    return arr


class CsrHypergraph:
    """Frozen dual-direction CSR incidence for a :class:`Hypergraph`."""

    __slots__ = (
        "net_indptr",
        "net_indices",
        "module_indptr",
        "module_indices",
        "module_areas",
        "net_weights",
        "module_names",
        "net_names",
        "name",
    )

    def __init__(
        self,
        net_indptr: Sequence[int],
        net_indices: Sequence[int],
        module_indptr: Sequence[int],
        module_indices: Sequence[int],
        module_areas: Optional[Sequence[float]] = None,
        net_weights: Optional[Sequence[float]] = None,
        module_names: Optional[Sequence[str]] = None,
        net_names: Optional[Sequence[str]] = None,
        name: str = "",
        validate: bool = True,
    ):
        self.net_indptr = _frozen(_as_indptr(net_indptr, "net_indptr"))
        self.module_indptr = _frozen(
            _as_indptr(module_indptr, "module_indptr")
        )
        self.net_indices = _frozen(
            np.ascontiguousarray(net_indices, dtype=np.int64)
        )
        self.module_indices = _frozen(
            np.ascontiguousarray(module_indices, dtype=np.int64)
        )
        num_modules = self.module_indptr.size - 1
        num_nets = self.net_indptr.size - 1
        areas = (
            np.ones(num_modules, dtype=np.float64)
            if module_areas is None
            else np.ascontiguousarray(module_areas, dtype=np.float64)
        )
        if areas.shape != (num_modules,):
            raise HypergraphError(
                f"module_areas has {areas.size} entries for "
                f"{num_modules} modules"
            )
        self.module_areas = _frozen(areas)
        if net_weights is None:
            self.net_weights = None
        else:
            weights = np.ascontiguousarray(net_weights, dtype=np.float64)
            if weights.shape != (num_nets,):
                raise HypergraphError(
                    f"net_weights has {weights.size} entries for "
                    f"{num_nets} nets"
                )
            self.net_weights = _frozen(weights)
        self.module_names = (
            None if module_names is None else tuple(module_names)
        )
        self.net_names = None if net_names is None else tuple(net_names)
        self.name = name
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.net_indptr[-1] != self.net_indices.size:
            raise HypergraphError(
                f"net_indptr ends at {int(self.net_indptr[-1])} but "
                f"net_indices has {self.net_indices.size} pins"
            )
        if self.module_indptr[-1] != self.module_indices.size:
            raise HypergraphError(
                f"module_indptr ends at {int(self.module_indptr[-1])} "
                f"but module_indices has {self.module_indices.size} pins"
            )
        n, m = self.num_modules, self.num_nets
        if self.net_indices.size and (
            self.net_indices.min() < 0 or self.net_indices.max() >= n
        ):
            bad = self.net_indices[
                (self.net_indices < 0) | (self.net_indices >= n)
            ][0]
            raise HypergraphError(
                f"net_indices references module {int(bad)} outside "
                f"[0, {n})"
            )
        if self.module_indices.size and (
            self.module_indices.min() < 0
            or self.module_indices.max() >= m
        ):
            bad = self.module_indices[
                (self.module_indices < 0) | (self.module_indices >= m)
            ][0]
            raise HypergraphError(
                f"module_indices references net {int(bad)} outside "
                f"[0, {m})"
            )
        # Rows must be strictly increasing (sorted, duplicate-free),
        # matching Hypergraph's normalised pin lists.
        for indptr, indices, what in (
            (self.net_indptr, self.net_indices, "net"),
            (self.module_indptr, self.module_indices, "module"),
        ):
            if indices.size < 2:
                continue
            not_row_start = np.ones(indices.size, dtype=bool)
            not_row_start[indptr[:-1][indptr[:-1] < indices.size]] = False
            bad = np.flatnonzero(
                not_row_start[1:] & (indices[1:] <= indices[:-1])
            )
            if bad.size:
                pos = int(bad[0]) + 1
                row = int(np.searchsorted(indptr, pos, side="right")) - 1
                raise HypergraphError(
                    f"{what} row {row} is not sorted/duplicate-free at "
                    f"entry {int(indices[pos])}"
                )
        mismatch = find_incidence_mismatch(
            self.net_indptr,
            self.net_indices,
            self.module_indptr,
            self.module_indices,
        )
        if mismatch is not None:
            module, net, missing_from = mismatch
            present_in = (
                "module→nets"
                if missing_from == "net→modules"
                else "net→modules"
            )
            raise HypergraphError(
                f"inconsistent incidence: pin (module {module}, "
                f"net {net}) appears in the {present_in} direction but "
                f"is missing from {missing_from}"
            )

    # ------------------------------------------------------------------
    @property
    def num_modules(self) -> int:
        return self.module_indptr.size - 1

    @property
    def num_nets(self) -> int:
        return self.net_indptr.size - 1

    @property
    def num_pins(self) -> int:
        return self.net_indices.size

    def net_sizes(self) -> np.ndarray:
        """Pins per net (read-only int64 view-free array)."""
        return np.diff(self.net_indptr)

    def module_degrees(self) -> np.ndarray:
        """Nets per module."""
        return np.diff(self.module_indptr)

    def pin_nets(self) -> np.ndarray:
        """The net id of every pin, aligned with ``net_indices``."""
        return np.repeat(
            np.arange(self.num_nets, dtype=np.int64), self.net_sizes()
        )

    def net_weights_or_unit(self) -> np.ndarray:
        """Explicit net weights, or a fresh unit vector."""
        if self.net_weights is not None:
            return self.net_weights
        return np.ones(self.num_nets, dtype=np.float64)

    # ------------------------------------------------------------------
    @classmethod
    def from_hypergraph(cls, h: Hypergraph) -> "CsrHypergraph":
        """Exact O(pins) conversion (trusted input: no re-validation)."""
        pins = h._pins
        nets_of = h._nets_of
        m = h.num_nets
        n = h.num_modules
        sizes = np.fromiter(
            (len(p) for p in pins), dtype=np.int64, count=m
        )
        net_indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(sizes, out=net_indptr[1:])
        net_indices = np.fromiter(
            chain.from_iterable(pins), dtype=np.int64, count=h.num_pins
        )
        degrees = np.fromiter(
            (len(inc) for inc in nets_of), dtype=np.int64, count=n
        )
        module_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=module_indptr[1:])
        module_indices = np.fromiter(
            chain.from_iterable(nets_of), dtype=np.int64, count=h.num_pins
        )
        return cls(
            net_indptr,
            net_indices,
            module_indptr,
            module_indices,
            module_areas=h.module_areas,
            net_weights=h._net_weights,
            module_names=h._module_names,
            net_names=h._net_names,
            name=h.name,
            validate=False,
        )

    def to_hypergraph(self) -> Hypergraph:
        """Rebuild the object representation, losslessly."""
        nets = [
            self.net_indices[
                self.net_indptr[i]:self.net_indptr[i + 1]
            ].tolist()
            for i in range(self.num_nets)
        ]
        return Hypergraph(
            nets,
            num_modules=self.num_modules,
            module_names=self.module_names,
            net_names=self.net_names,
            module_areas=self.module_areas.tolist(),
            net_weights=(
                None
                if self.net_weights is None
                else self.net_weights.tolist()
            ),
            name=self.name,
        )

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CsrHypergraph):
            return NotImplemented
        same_weights = (
            (self.net_weights is None) == (other.net_weights is None)
        ) and (
            self.net_weights is None
            or np.array_equal(self.net_weights, other.net_weights)
        )
        return (
            np.array_equal(self.net_indptr, other.net_indptr)
            and np.array_equal(self.net_indices, other.net_indices)
            and np.array_equal(self.module_indptr, other.module_indptr)
            and np.array_equal(
                self.module_indices, other.module_indices
            )
            and np.array_equal(self.module_areas, other.module_areas)
            and same_weights
            and self.module_names == other.module_names
            and self.net_names == other.net_names
            and self.name == other.name
        )

    def __repr__(self) -> str:
        return (
            f"CsrHypergraph(modules={self.num_modules}, "
            f"nets={self.num_nets}, pins={self.num_pins})"
        )

    def summary(self) -> Tuple[int, int, int]:
        """(modules, nets, pins) — handy for logging."""
        return (self.num_modules, self.num_nets, self.num_pins)
