"""Netlist file formats.

Two formats are supported:

* **JSON** — a faithful, lossless serialisation of a hypergraph, used for
  caching generated benchmarks.
* **NET text format** — a minimal human-editable format in the spirit of
  the MCNC / bookshelf netlist files the paper's benchmarks shipped in::

      # comment
      module <name> [area]          (optional; modules auto-created by nets)
      net <name> <module> <module> ...

  Lines are whitespace-separated; blank lines and ``#`` comments ignored.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from ..errors import ParseError
from .builder import HypergraphBuilder
from .hypergraph import Hypergraph

__all__ = [
    "to_json",
    "from_json",
    "save_json",
    "load_json",
    "dumps_net",
    "loads_net",
    "save_net",
    "load_net",
]

PathLike = Union[str, Path]

_JSON_FORMAT = "repro-hypergraph-v1"


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def to_json(h: Hypergraph) -> dict:
    """Serialise ``h`` to a JSON-compatible dictionary."""
    doc = {
        "format": _JSON_FORMAT,
        "name": h.name,
        "num_modules": h.num_modules,
        "nets": [list(h.pins(j)) for j in range(h.num_nets)],
    }
    if h.has_module_names:
        doc["module_names"] = [
            h.module_name(v) for v in range(h.num_modules)
        ]
    if h.has_net_names:
        doc["net_names"] = [h.net_name(j) for j in range(h.num_nets)]
    if any(a != 1.0 for a in h.module_areas):
        doc["module_areas"] = list(h.module_areas)
    if h.has_net_weights:
        doc["net_weights"] = list(h.net_weights)
    return doc


def from_json(doc: dict) -> Hypergraph:
    """Rebuild a hypergraph from :func:`to_json` output."""
    if doc.get("format") != _JSON_FORMAT:
        raise ParseError(
            f"unrecognised format tag {doc.get('format')!r}; "
            f"expected {_JSON_FORMAT!r}"
        )
    return Hypergraph(
        doc["nets"],
        num_modules=doc["num_modules"],
        module_names=doc.get("module_names"),
        net_names=doc.get("net_names"),
        module_areas=doc.get("module_areas"),
        net_weights=doc.get("net_weights"),
        name=doc.get("name", ""),
    )


def save_json(h: Hypergraph, path: PathLike) -> None:
    """Write ``h`` as JSON to ``path``."""
    Path(path).write_text(json.dumps(to_json(h)), encoding="utf-8")


def load_json(path: PathLike) -> Hypergraph:
    """Read a hypergraph from a JSON file written by :func:`save_json`."""
    return from_json(json.loads(Path(path).read_text(encoding="utf-8")))


# ----------------------------------------------------------------------
# NET text format
# ----------------------------------------------------------------------
def dumps_net(h: Hypergraph) -> str:
    """Render ``h`` in the NET text format."""
    lines: List[str] = [f"# netlist {h.name or '(unnamed)'}"]
    lines.append(
        f"# {h.num_modules} modules, {h.num_nets} nets, {h.num_pins} pins"
    )
    for v in range(h.num_modules):
        area = h.module_area(v)
        if area != 1.0:
            lines.append(f"module {h.module_name(v)} {area:g}")
        else:
            lines.append(f"module {h.module_name(v)}")
    for j in range(h.num_nets):
        pins = " ".join(h.module_name(p) for p in h.pins(j))
        lines.append(f"net {h.net_name(j)} {pins}")
    return "\n".join(lines) + "\n"


def loads_net(text: str, name: str = "") -> Hypergraph:
    """Parse the NET text format from a string."""
    builder = HypergraphBuilder()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        keyword = fields[0].lower()
        if keyword == "module":
            if len(fields) not in (2, 3):
                raise ParseError(
                    "expected 'module <name> [area]'", line=lineno
                )
            area = 1.0
            if len(fields) == 3:
                try:
                    area = float(fields[2])
                except ValueError:
                    raise ParseError(
                        f"bad module area {fields[2]!r}", line=lineno
                    ) from None
            if builder.has_module(fields[1]):
                raise ParseError(
                    f"module {fields[1]!r} declared twice", line=lineno
                )
            builder.add_module(fields[1], area)
        elif keyword == "net":
            if len(fields) < 2:
                raise ParseError("expected 'net <name> <pins...>'", line=lineno)
            try:
                builder.add_net_by_names(fields[2:], name=fields[1])
            except Exception as exc:
                raise ParseError(str(exc), line=lineno) from exc
        else:
            raise ParseError(
                f"unknown keyword {fields[0]!r} "
                "(expected 'module' or 'net')",
                line=lineno,
            )
    return builder.build(name=name)


def save_net(h: Hypergraph, path: PathLike) -> None:
    """Write ``h`` in the NET text format."""
    Path(path).write_text(dumps_net(h), encoding="utf-8")


def load_net(path: PathLike) -> Hypergraph:
    """Read a NET-format netlist file."""
    path = Path(path)
    return loads_net(path.read_text(encoding="utf-8"), name=path.stem)
