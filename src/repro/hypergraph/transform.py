"""Hypergraph transformations.

All transformations are pure: they return new :class:`Hypergraph` objects
(plus index maps back to the original where applicable).  Included are the
standard netlist-preparation steps the paper discusses:

* dropping degenerate (empty / single-pin) nets,
* *thresholding* — discarding nets larger than a bound, the sparsification
  the paper warns "may actually be discarding useful partitioning
  information" (Section 2.2, footnote 2),
* extracting induced sub-hypergraphs,
* merging (clustering) modules, the primitive under the coarsening hybrid
  of :mod:`repro.clustering`.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..errors import HypergraphError
from .hypergraph import Hypergraph

__all__ = [
    "drop_degenerate_nets",
    "threshold_nets",
    "induced_subhypergraph",
    "merge_modules",
    "relabel_modules",
]


def _rebuild(
    h: Hypergraph,
    keep_nets: Sequence[int],
    name_suffix: str,
) -> Tuple[Hypergraph, List[int]]:
    """Build a new hypergraph from a subset of h's nets (modules kept)."""
    nets = [h.pins(j) for j in keep_nets]
    names = [h.net_name(j) for j in keep_nets] if h.has_net_names else None
    out = Hypergraph(
        nets,
        num_modules=h.num_modules,
        module_names=[h.module_name(v) for v in range(h.num_modules)]
        if h.has_module_names
        else None,
        net_names=names,
        module_areas=h.module_areas,
        net_weights=[h.net_weight(j) for j in keep_nets]
        if h.has_net_weights
        else None,
        name=h.name + name_suffix if h.name else "",
    )
    return out, list(keep_nets)


def drop_degenerate_nets(h: Hypergraph) -> Tuple[Hypergraph, List[int]]:
    """Remove nets with fewer than two pins.

    Returns the new hypergraph and the list mapping new net indices to the
    original indices.  Degenerate nets can never be cut, so removing them
    changes no partition cost; it does change the intersection graph (a
    1-pin net would otherwise become a vertex of G').
    """
    keep = [j for j in range(h.num_nets) if h.net_size(j) >= 2]
    return _rebuild(h, keep, ":nodegen")


def threshold_nets(
    h: Hypergraph, max_size: int
) -> Tuple[Hypergraph, List[int]]:
    """Remove nets with more than ``max_size`` pins.

    This is the input-sparsification heuristic mentioned in the paper's
    conclusion ("additionally sparsifying the input through thresholding").
    """
    if max_size < 2:
        raise HypergraphError(f"threshold max_size must be >= 2, got {max_size}")
    keep = [j for j in range(h.num_nets) if h.net_size(j) <= max_size]
    return _rebuild(h, keep, f":thr{max_size}")


def induced_subhypergraph(
    h: Hypergraph,
    modules: Iterable[int],
    keep_partial_nets: bool = True,
) -> Tuple[Hypergraph, List[int], List[int]]:
    """Restrict ``h`` to a module subset.

    Each net is intersected with the subset.  With ``keep_partial_nets``
    (the default, appropriate for recursive partitioning) a net survives if
    at least two of its pins remain; otherwise only nets fully contained in
    the subset survive.

    Returns ``(sub, module_map, net_map)`` where ``module_map[new] = old``
    for modules and likewise for nets.
    """
    module_list = sorted(set(int(v) for v in modules))
    for v in module_list:
        if not 0 <= v < h.num_modules:
            raise HypergraphError(f"module index {v} out of range")
    old_to_new = {old: new for new, old in enumerate(module_list)}

    nets: List[List[int]] = []
    net_map: List[int] = []
    for j in range(h.num_nets):
        pins = h.pins(j)
        inside = [old_to_new[p] for p in pins if p in old_to_new]
        if keep_partial_nets:
            survives = len(inside) >= 2
        else:
            survives = len(inside) == len(pins) and len(pins) >= 2
        if survives:
            nets.append(inside)
            net_map.append(j)

    sub = Hypergraph(
        nets,
        num_modules=len(module_list),
        module_names=[h.module_name(v) for v in module_list]
        if h.has_module_names
        else None,
        net_names=[h.net_name(j) for j in net_map]
        if h.has_net_names
        else None,
        module_areas=[h.module_area(v) for v in module_list],
        net_weights=[h.net_weight(j) for j in net_map]
        if h.has_net_weights
        else None,
        name=h.name + ":sub" if h.name else "",
    )
    return sub, module_list, net_map


def merge_modules(
    h: Hypergraph, clusters: Sequence[Iterable[int]]
) -> Tuple[Hypergraph, List[int]]:
    """Contract each cluster of modules into a single coarse module.

    ``clusters`` must partition ``range(h.num_modules)`` (every module in
    exactly one cluster).  Nets are re-expressed over cluster indices;
    nets that collapse to fewer than two distinct clusters are dropped
    (they are internal to a cluster and can never be cut at the coarse
    level).  Cluster areas are the sums of member areas.

    Returns ``(coarse, assignment)`` where ``assignment[module] = cluster``.
    """
    assignment = [-1] * h.num_modules
    for c, members in enumerate(clusters):
        for v in members:
            if not 0 <= v < h.num_modules:
                raise HypergraphError(f"module index {v} out of range")
            if assignment[v] != -1:
                raise HypergraphError(
                    f"module {v} appears in clusters {assignment[v]} and {c}"
                )
            assignment[v] = c
    missing = [v for v, c in enumerate(assignment) if c == -1]
    if missing:
        raise HypergraphError(
            f"{len(missing)} modules not assigned to any cluster "
            f"(first: {missing[0]})"
        )

    num_clusters = len(clusters)
    areas = [0.0] * num_clusters
    for v in range(h.num_modules):
        areas[assignment[v]] += h.module_area(v)

    nets: List[List[int]] = []
    weights: List[float] = []
    for j in range(h.num_nets):
        coarse_pins = sorted({assignment[p] for p in h.pins(j)})
        if len(coarse_pins) >= 2:
            nets.append(coarse_pins)
            weights.append(h.net_weight(j))

    coarse = Hypergraph(
        nets,
        num_modules=num_clusters,
        module_areas=areas,
        net_weights=weights if h.has_net_weights else None,
        name=h.name + ":coarse" if h.name else "",
    )
    return coarse, assignment


def relabel_modules(
    h: Hypergraph, order: Sequence[int]
) -> Tuple[Hypergraph, List[int]]:
    """Permute module indices so that ``order[i]`` becomes module ``i``.

    Useful for canonicalising generated benchmarks.  Returns the relabelled
    hypergraph and the inverse permutation (old index -> new index).
    """
    if sorted(order) != list(range(h.num_modules)):
        raise HypergraphError("order must be a permutation of module indices")
    inverse = [0] * h.num_modules
    for new, old in enumerate(order):
        inverse[old] = new
    nets = [[inverse[p] for p in h.pins(j)] for j in range(h.num_nets)]
    out = Hypergraph(
        nets,
        num_modules=h.num_modules,
        module_names=[h.module_name(old) for old in order]
        if h.has_module_names
        else None,
        net_names=[h.net_name(j) for j in range(h.num_nets)]
        if h.has_net_names
        else None,
        module_areas=[h.module_area(old) for old in order],
        net_weights=list(h.net_weights) if h.has_net_weights else None,
        name=h.name,
    )
    return out, inverse
