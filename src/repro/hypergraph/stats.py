"""Descriptive statistics of netlist hypergraphs.

These are the "statistical analyses of netlist structure" the paper uses to
motivate the intersection-graph representation (Sections 1.2 and 2.2): net
size histograms, module degree distributions, and pin counts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .hypergraph import Hypergraph

__all__ = [
    "net_size_histogram",
    "module_degree_histogram",
    "HypergraphStats",
    "describe",
]


def net_size_histogram(h: Hypergraph) -> Dict[int, int]:
    """Map each occurring net size *k* to the number of *k*-pin nets.

    This is the "Number of Nets" column of the paper's Table 1.
    """
    return dict(sorted(Counter(h.net_sizes()).items()))


def module_degree_histogram(h: Hypergraph) -> Dict[int, int]:
    """Map each occurring module degree to the number of such modules."""
    return dict(sorted(Counter(h.module_degrees()).items()))


def _mean(values: List[int]) -> float:
    return sum(values) / len(values) if values else 0.0


@dataclass(frozen=True)
class HypergraphStats:
    """A summary of one hypergraph's shape."""

    name: str
    num_modules: int
    num_nets: int
    num_pins: int
    mean_net_size: float
    max_net_size: int
    mean_module_degree: float
    max_module_degree: int
    num_two_pin_nets: int
    num_large_nets: int  # nets with > 10 pins
    clique_nonzeros_bound: int

    def as_rows(self) -> List[Tuple[str, str]]:
        """Key/value rows for text reports."""
        return [
            ("name", self.name or "(unnamed)"),
            ("modules", str(self.num_modules)),
            ("nets", str(self.num_nets)),
            ("pins", str(self.num_pins)),
            ("mean net size", f"{self.mean_net_size:.2f}"),
            ("max net size", str(self.max_net_size)),
            ("mean module degree", f"{self.mean_module_degree:.2f}"),
            ("max module degree", str(self.max_module_degree)),
            ("2-pin nets", str(self.num_two_pin_nets)),
            ("nets with >10 pins", str(self.num_large_nets)),
            ("clique-model nonzero bound", str(self.clique_nonzeros_bound)),
        ]

    def __str__(self) -> str:
        width = max(len(k) for k, _ in self.as_rows())
        return "\n".join(f"{k:<{width}}  {v}" for k, v in self.as_rows())


def describe(h: Hypergraph) -> HypergraphStats:
    """Compute a :class:`HypergraphStats` summary for ``h``."""
    sizes = h.net_sizes()
    degrees = h.module_degrees()
    return HypergraphStats(
        name=h.name,
        num_modules=h.num_modules,
        num_nets=h.num_nets,
        num_pins=h.num_pins,
        mean_net_size=_mean(sizes),
        max_net_size=max(sizes, default=0),
        mean_module_degree=_mean(degrees),
        max_module_degree=max(degrees, default=0),
        num_two_pin_nets=sum(1 for s in sizes if s == 2),
        num_large_nets=sum(1 for s in sizes if s > 10),
        clique_nonzeros_bound=h.clique_model_nonzeros(),
    )
