"""Netlist hypergraph substrate.

The circuit netlist hypergraph ``H = (V, E')`` — modules as vertices, signal
nets as hyperedges — plus construction, validation, statistics, file I/O and
transformations.
"""

from .builder import HypergraphBuilder
from .csr import CsrHypergraph
from .formats import (
    dumps_bookshelf,
    dumps_hgr,
    dumps_verilog,
    load_bookshelf,
    load_hgr,
    load_verilog,
    loads_bookshelf,
    loads_hgr,
    loads_verilog,
    save_bookshelf,
    save_hgr,
    save_verilog,
)
from .hypergraph import Hypergraph
from .io import (
    dumps_net,
    from_json,
    load_json,
    load_net,
    loads_net,
    save_json,
    save_net,
    to_json,
)
from .stats import (
    HypergraphStats,
    describe,
    module_degree_histogram,
    net_size_histogram,
)
from .transform import (
    drop_degenerate_nets,
    induced_subhypergraph,
    merge_modules,
    relabel_modules,
    threshold_nets,
)
from .validate import (
    Issue,
    ValidationReport,
    check,
    find_incidence_mismatch,
    validate,
)

__all__ = [
    "CsrHypergraph",
    "Hypergraph",
    "HypergraphBuilder",
    "HypergraphStats",
    "Issue",
    "ValidationReport",
    "check",
    "describe",
    "drop_degenerate_nets",
    "dumps_bookshelf",
    "dumps_hgr",
    "dumps_net",
    "dumps_verilog",
    "find_incidence_mismatch",
    "from_json",
    "induced_subhypergraph",
    "load_bookshelf",
    "load_hgr",
    "load_json",
    "load_net",
    "load_verilog",
    "loads_bookshelf",
    "loads_hgr",
    "loads_net",
    "loads_verilog",
    "merge_modules",
    "module_degree_histogram",
    "net_size_histogram",
    "relabel_modules",
    "save_bookshelf",
    "save_hgr",
    "save_json",
    "save_net",
    "save_verilog",
    "threshold_nets",
    "to_json",
    "validate",
]
