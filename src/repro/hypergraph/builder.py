"""Incremental construction of :class:`~repro.hypergraph.Hypergraph`.

The hypergraph itself is immutable; :class:`HypergraphBuilder` is the
mutable staging object used by parsers, generators and transformations.
Modules may be declared explicitly (to fix ordering, names or areas) or
created on demand by name when nets are added.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..errors import HypergraphError
from .hypergraph import Hypergraph

__all__ = ["HypergraphBuilder"]


class HypergraphBuilder:
    """Builds a hypergraph net by net.

    Examples
    --------
    >>> b = HypergraphBuilder()
    >>> a = b.add_module("a"); c = b.add_module("c")
    >>> _ = b.add_net([a, c], name="clk")
    >>> h = b.build(name="tiny")
    >>> h.num_modules, h.num_nets
    (2, 1)
    """

    def __init__(self) -> None:
        self._module_names: List[str] = []
        self._module_areas: List[float] = []
        self._module_index: Dict[str, int] = {}
        self._nets: List[List[int]] = []
        self._net_names: List[str] = []
        self._net_name_set: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Modules
    # ------------------------------------------------------------------
    @property
    def num_modules(self) -> int:
        return len(self._module_names)

    @property
    def num_nets(self) -> int:
        return len(self._nets)

    def add_module(self, name: Optional[str] = None, area: float = 1.0) -> int:
        """Declare a module; returns its index.

        Unnamed modules are given the synthetic name ``m<i>``.  Declaring
        the same name twice is an error (use :meth:`module` for
        get-or-create semantics).
        """
        index = len(self._module_names)
        if name is None:
            name = f"m{index}"
        if name in self._module_index:
            raise HypergraphError(f"duplicate module name {name!r}")
        if area < 0:
            raise HypergraphError(f"module {name!r} has negative area {area}")
        self._module_names.append(name)
        self._module_areas.append(float(area))
        self._module_index[name] = index
        return index

    def module(self, name: str, area: float = 1.0) -> int:
        """Return the index for ``name``, creating the module if needed."""
        existing = self._module_index.get(name)
        if existing is not None:
            return existing
        return self.add_module(name, area)

    def has_module(self, name: str) -> bool:
        return name in self._module_index

    def module_index(self, name: str) -> int:
        """Index of a previously declared module name."""
        try:
            return self._module_index[name]
        except KeyError:
            raise HypergraphError(f"unknown module name {name!r}") from None

    def set_area(self, module: int, area: float) -> None:
        """Override the area of an already declared module."""
        if not 0 <= module < len(self._module_areas):
            raise HypergraphError(f"module index {module} out of range")
        if area < 0:
            raise HypergraphError("module areas must be non-negative")
        self._module_areas[module] = float(area)

    # ------------------------------------------------------------------
    # Nets
    # ------------------------------------------------------------------
    def add_net(
        self, pins: Iterable[int], name: Optional[str] = None
    ) -> int:
        """Add a net over module *indices*; returns the net index."""
        index = len(self._nets)
        pin_list = [int(p) for p in pins]
        for pin in pin_list:
            if not 0 <= pin < len(self._module_names):
                raise HypergraphError(
                    f"net {name or index} references undeclared module "
                    f"index {pin}"
                )
        if name is None:
            name = f"n{index}"
        if name in self._net_name_set:
            raise HypergraphError(f"duplicate net name {name!r}")
        self._nets.append(pin_list)
        self._net_names.append(name)
        self._net_name_set[name] = index
        return index

    def add_net_by_names(
        self, pin_names: Iterable[str], name: Optional[str] = None
    ) -> int:
        """Add a net over module *names*, creating modules on demand."""
        return self.add_net([self.module(p) for p in pin_names], name)

    def connect(self, net: int, module: int) -> None:
        """Append one more pin to an existing net."""
        if not 0 <= net < len(self._nets):
            raise HypergraphError(f"net index {net} out of range")
        if not 0 <= module < len(self._module_names):
            raise HypergraphError(f"module index {module} out of range")
        self._nets[net].append(module)

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def build(self, name: str = "") -> Hypergraph:
        """Freeze the staged data into an immutable :class:`Hypergraph`."""
        return Hypergraph(
            self._nets,
            num_modules=len(self._module_names),
            module_names=self._module_names,
            net_names=self._net_names,
            module_areas=self._module_areas,
            name=name,
        )
