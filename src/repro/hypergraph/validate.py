"""Structural validation of netlist hypergraphs.

Real netlists from parsers or generators can contain pathologies that the
partitioning algorithms either tolerate (and should be warned about) or
reject outright.  :func:`validate` collects every issue found;
:func:`check` raises on the first fatal one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import ValidationError
from .hypergraph import Hypergraph

__all__ = [
    "Issue",
    "ValidationReport",
    "validate",
    "check",
    "find_incidence_mismatch",
]


def find_incidence_mismatch(
    net_indptr, net_indices, module_indptr, module_indices
):
    """Cross-check the two CSR incidence directions of a hypergraph.

    A pin is a (module, net) pair; it must appear in *both* the
    net→modules direction (``net_indptr``/``net_indices``) and the
    module→nets transpose (``module_indptr``/``module_indices``).
    Returns ``None`` when the directions agree, else the lowest
    offending ``(module, net, missing_from)`` triple where
    ``missing_from`` names the direction the pin is absent from
    (``"net→modules"`` or ``"module→nets"``).  O(pins log pins).
    """
    import numpy as np

    net_indptr = np.asarray(net_indptr, dtype=np.int64)
    module_indptr = np.asarray(module_indptr, dtype=np.int64)
    net_indices = np.asarray(net_indices, dtype=np.int64)
    module_indices = np.asarray(module_indices, dtype=np.int64)
    num_nets = net_indptr.size - 1
    num_modules = module_indptr.size - 1
    stride = max(num_nets, 1)
    # Encode each pin as module * stride + net — unique, and ordered so
    # the reported mismatch is the lowest (module, net) offender.
    pin_nets = np.repeat(
        np.arange(num_nets, dtype=np.int64), np.diff(net_indptr)
    )
    keys_net_dir = net_indices * stride + pin_nets
    pin_modules = np.repeat(
        np.arange(num_modules, dtype=np.int64), np.diff(module_indptr)
    )
    keys_module_dir = pin_modules * stride + module_indices
    missing_in_module_dir = np.setdiff1d(keys_net_dir, keys_module_dir)
    missing_in_net_dir = np.setdiff1d(keys_module_dir, keys_net_dir)
    if not missing_in_module_dir.size and not missing_in_net_dir.size:
        return None
    candidates = []
    if missing_in_module_dir.size:
        candidates.append((int(missing_in_module_dir[0]), "module→nets"))
    if missing_in_net_dir.size:
        candidates.append((int(missing_in_net_dir[0]), "net→modules"))
    key, missing_from = min(candidates)
    return key // stride, key % stride, missing_from


@dataclass(frozen=True)
class Issue:
    """One validation finding.

    ``severity`` is ``"error"`` for structures the core algorithms cannot
    process meaningfully and ``"warning"`` for tolerated oddities.
    """

    severity: str
    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"[{self.severity}] {self.code}: {self.message}"


@dataclass
class ValidationReport:
    """All issues found in one hypergraph."""

    issues: List[Issue] = field(default_factory=list)

    @property
    def errors(self) -> List[Issue]:
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> List[Issue]:
        return [i for i in self.issues if i.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no *errors* were found (warnings are allowed)."""
        return not self.errors

    def __str__(self) -> str:  # pragma: no cover - trivial
        if not self.issues:
            return "validation: clean"
        return "\n".join(str(i) for i in self.issues)


def validate(h: Hypergraph) -> ValidationReport:
    """Inspect ``h`` and report structural issues.

    Checks performed:

    * ``empty-netlist`` (error): no modules at all.
    * ``no-nets`` (error): modules but zero nets — nothing to partition.
    * ``empty-net`` (warning): a net with zero pins.  Harmless but usually
      a parser artefact; such nets can never be cut.
    * ``single-pin-net`` (warning): a 1-pin net carries no connectivity
      information and inflates net-cut-free statistics.
    * ``isolated-module`` (warning): a module on no net; it will be placed
      arbitrarily by every algorithm.
    * ``duplicate-net`` (warning): two nets with identical pin sets;
      legitimate (parallel wires) but worth flagging.
    * ``too-few-modules`` (error): fewer than 2 modules makes every
      bipartitioning problem vacuous.
    """
    report = ValidationReport()
    add = report.issues.append

    if h.num_modules == 0:
        add(Issue("error", "empty-netlist", "hypergraph has no modules"))
        return report
    if h.num_modules < 2:
        add(
            Issue(
                "error",
                "too-few-modules",
                f"only {h.num_modules} module(s); bipartitioning needs >= 2",
            )
        )
    if h.num_nets == 0:
        add(Issue("error", "no-nets", "hypergraph has no nets"))

    seen_pin_sets = {}
    for net, pins in h.iter_nets():
        if len(pins) == 0:
            add(
                Issue(
                    "warning",
                    "empty-net",
                    f"net {h.net_name(net)} (index {net}) has no pins",
                )
            )
        elif len(pins) == 1:
            add(
                Issue(
                    "warning",
                    "single-pin-net",
                    f"net {h.net_name(net)} (index {net}) has a single pin",
                )
            )
        first = seen_pin_sets.get(pins)
        if first is not None and pins:
            add(
                Issue(
                    "warning",
                    "duplicate-net",
                    f"net {h.net_name(net)} duplicates net "
                    f"{h.net_name(first)} (pins {pins})",
                )
            )
        else:
            seen_pin_sets[pins] = net

    for module in h.isolated_modules():
        add(
            Issue(
                "warning",
                "isolated-module",
                f"module {h.module_name(module)} (index {module}) "
                "is on no net",
            )
        )
    return report


def check(h: Hypergraph) -> None:
    """Raise :class:`ValidationError` if ``h`` has any fatal issue."""
    report = validate(h)
    if not report.ok:
        raise ValidationError(
            "; ".join(str(i) for i in report.errors)
        )
