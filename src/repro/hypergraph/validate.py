"""Structural validation of netlist hypergraphs.

Real netlists from parsers or generators can contain pathologies that the
partitioning algorithms either tolerate (and should be warned about) or
reject outright.  :func:`validate` collects every issue found;
:func:`check` raises on the first fatal one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import ValidationError
from .hypergraph import Hypergraph

__all__ = ["Issue", "ValidationReport", "validate", "check"]


@dataclass(frozen=True)
class Issue:
    """One validation finding.

    ``severity`` is ``"error"`` for structures the core algorithms cannot
    process meaningfully and ``"warning"`` for tolerated oddities.
    """

    severity: str
    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"[{self.severity}] {self.code}: {self.message}"


@dataclass
class ValidationReport:
    """All issues found in one hypergraph."""

    issues: List[Issue] = field(default_factory=list)

    @property
    def errors(self) -> List[Issue]:
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> List[Issue]:
        return [i for i in self.issues if i.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no *errors* were found (warnings are allowed)."""
        return not self.errors

    def __str__(self) -> str:  # pragma: no cover - trivial
        if not self.issues:
            return "validation: clean"
        return "\n".join(str(i) for i in self.issues)


def validate(h: Hypergraph) -> ValidationReport:
    """Inspect ``h`` and report structural issues.

    Checks performed:

    * ``empty-netlist`` (error): no modules at all.
    * ``no-nets`` (error): modules but zero nets — nothing to partition.
    * ``empty-net`` (warning): a net with zero pins.  Harmless but usually
      a parser artefact; such nets can never be cut.
    * ``single-pin-net`` (warning): a 1-pin net carries no connectivity
      information and inflates net-cut-free statistics.
    * ``isolated-module`` (warning): a module on no net; it will be placed
      arbitrarily by every algorithm.
    * ``duplicate-net`` (warning): two nets with identical pin sets;
      legitimate (parallel wires) but worth flagging.
    * ``too-few-modules`` (error): fewer than 2 modules makes every
      bipartitioning problem vacuous.
    """
    report = ValidationReport()
    add = report.issues.append

    if h.num_modules == 0:
        add(Issue("error", "empty-netlist", "hypergraph has no modules"))
        return report
    if h.num_modules < 2:
        add(
            Issue(
                "error",
                "too-few-modules",
                f"only {h.num_modules} module(s); bipartitioning needs >= 2",
            )
        )
    if h.num_nets == 0:
        add(Issue("error", "no-nets", "hypergraph has no nets"))

    seen_pin_sets = {}
    for net, pins in h.iter_nets():
        if len(pins) == 0:
            add(
                Issue(
                    "warning",
                    "empty-net",
                    f"net {h.net_name(net)} (index {net}) has no pins",
                )
            )
        elif len(pins) == 1:
            add(
                Issue(
                    "warning",
                    "single-pin-net",
                    f"net {h.net_name(net)} (index {net}) has a single pin",
                )
            )
        first = seen_pin_sets.get(pins)
        if first is not None and pins:
            add(
                Issue(
                    "warning",
                    "duplicate-net",
                    f"net {h.net_name(net)} duplicates net "
                    f"{h.net_name(first)} (pins {pins})",
                )
            )
        else:
            seen_pin_sets[pins] = net

    for module in h.isolated_modules():
        add(
            Issue(
                "warning",
                "isolated-module",
                f"module {h.module_name(module)} (index {module}) "
                "is on no net",
            )
        )
    return report


def check(h: Hypergraph) -> None:
    """Raise :class:`ValidationError` if ``h`` has any fatal issue."""
    report = validate(h)
    if not report.ok:
        raise ValidationError(
            "; ".join(str(i) for i in report.errors)
        )
