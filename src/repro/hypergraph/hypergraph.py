"""The netlist hypergraph: the fundamental circuit representation.

A circuit netlist is modelled as a hypergraph ``H = (V, E')`` where vertices
are *modules* (cells, gates, pads) and hyperedges are *signal nets*, each net
being the set of modules it connects (Schweikert & Kernighan, 1972).  This is
the input representation for every algorithm in the library.

The :class:`Hypergraph` class is immutable after construction.  Modules and
nets are addressed by dense integer indices ``0 .. n-1`` and ``0 .. m-1``;
optional string names can be attached for I/O and reporting.  Immutability
keeps the many derived structures (intersection graph, clique-model graph,
spectral orderings) trivially consistent; transformations produce new
hypergraphs (see :mod:`repro.hypergraph.transform`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import HypergraphError

__all__ = ["Hypergraph"]


def _freeze_pins(
    nets: Sequence[Iterable[int]],
) -> Tuple[Tuple[Tuple[int, ...], ...], int]:
    """Normalise raw net pin lists into sorted, de-duplicated tuples.

    Returns the frozen pin structure and the implied module count (one past
    the largest module index seen; zero when there are no pins at all).
    """
    frozen: List[Tuple[int, ...]] = []
    max_module = -1
    for net_index, pins in enumerate(nets):
        pin_list = sorted(set(int(p) for p in pins))
        if pin_list and pin_list[0] < 0:
            raise HypergraphError(
                f"net {net_index} has a negative module index {pin_list[0]}"
            )
        if pin_list:
            max_module = max(max_module, pin_list[-1])
        frozen.append(tuple(pin_list))
    return tuple(frozen), max_module + 1


class Hypergraph:
    """An immutable netlist hypergraph.

    Parameters
    ----------
    nets:
        A sequence of nets; each net is an iterable of module indices
        (its *pins*).  Duplicate pins within one net are collapsed.
    num_modules:
        The total number of modules.  May exceed the largest index that
        appears in a net (isolated modules are legal — e.g. pads that are
        modelled but unconnected).  Defaults to one past the largest pin.
    module_names / net_names:
        Optional human-readable names, used by the text I/O formats.
    module_areas:
        Optional per-module areas.  The spectral algorithms in the paper
        are area-oblivious (Section 4 of the paper), but areas are carried
        through so partition reports can show ``area_U : area_W`` columns
        like the paper's tables.  Defaults to unit area for every module.

    Examples
    --------
    >>> h = Hypergraph([[0, 1], [1, 2, 3], [0, 3]])
    >>> h.num_modules, h.num_nets, h.num_pins
    (4, 3, 7)
    >>> h.pins(1)
    (1, 2, 3)
    >>> h.nets_of(3)
    (1, 2)
    """

    __slots__ = (
        "_pins",
        "_nets_of",
        "_num_modules",
        "_num_pins",
        "_module_names",
        "_net_names",
        "_module_areas",
        "_net_weights",
        "_name",
        "_csr",
    )

    def __init__(
        self,
        nets: Sequence[Iterable[int]],
        num_modules: Optional[int] = None,
        module_names: Optional[Sequence[str]] = None,
        net_names: Optional[Sequence[str]] = None,
        module_areas: Optional[Sequence[float]] = None,
        net_weights: Optional[Sequence[float]] = None,
        name: str = "",
    ):
        pins, implied_modules = _freeze_pins(nets)
        if num_modules is None:
            num_modules = implied_modules
        elif num_modules < implied_modules:
            raise HypergraphError(
                f"num_modules={num_modules} but nets reference module index "
                f"{implied_modules - 1}"
            )
        self._pins = pins
        self._num_modules = int(num_modules)
        self._num_pins = sum(len(p) for p in pins)
        self._name = name
        self._csr = None

        nets_of: List[List[int]] = [[] for _ in range(self._num_modules)]
        for net, net_pins in enumerate(pins):
            for module in net_pins:
                nets_of[module].append(net)
        self._nets_of: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(lst) for lst in nets_of
        )

        self._module_names = self._check_names(
            module_names, self._num_modules, "module"
        )
        self._net_names = self._check_names(net_names, len(pins), "net")
        if net_weights is None:
            self._net_weights: Optional[Tuple[float, ...]] = None
        else:
            weights = tuple(float(w) for w in net_weights)
            if len(weights) != len(pins):
                raise HypergraphError(
                    f"expected {len(pins)} net weights, got {len(weights)}"
                )
            if any(w < 0 for w in weights):
                raise HypergraphError("net weights must be non-negative")
            self._net_weights = weights
        if module_areas is None:
            self._module_areas: Tuple[float, ...] = (1.0,) * self._num_modules
        else:
            areas = tuple(float(a) for a in module_areas)
            if len(areas) != self._num_modules:
                raise HypergraphError(
                    f"expected {self._num_modules} module areas, "
                    f"got {len(areas)}"
                )
            if any(a < 0 for a in areas):
                raise HypergraphError("module areas must be non-negative")
            self._module_areas = areas

    @staticmethod
    def _check_names(
        names: Optional[Sequence[str]], expected: int, kind: str
    ) -> Optional[Tuple[str, ...]]:
        if names is None:
            return None
        frozen = tuple(str(n) for n in names)
        if len(frozen) != expected:
            raise HypergraphError(
                f"expected {expected} {kind} names, got {len(frozen)}"
            )
        return frozen

    # ------------------------------------------------------------------
    # Size accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """An optional identifying label (e.g. the benchmark name)."""
        return self._name

    @property
    def num_modules(self) -> int:
        """Number of modules (hypergraph vertices), ``|V|``."""
        return self._num_modules

    @property
    def num_nets(self) -> int:
        """Number of signal nets (hyperedges), ``|E'|``."""
        return len(self._pins)

    @property
    def num_pins(self) -> int:
        """Total pin count — the sum of all net sizes."""
        return self._num_pins

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    def pins(self, net: int) -> Tuple[int, ...]:
        """The modules connected by ``net``, as a sorted tuple."""
        try:
            return self._pins[net]
        except IndexError:
            raise HypergraphError(
                f"net index {net} out of range (have {self.num_nets} nets)"
            ) from None

    def nets_of(self, module: int) -> Tuple[int, ...]:
        """The nets incident to ``module``, as a sorted tuple."""
        try:
            return self._nets_of[module]
        except IndexError:
            raise HypergraphError(
                f"module index {module} out of range "
                f"(have {self.num_modules} modules)"
            ) from None

    def net_size(self, net: int) -> int:
        """Number of pins on ``net`` (the ``k`` of a *k-pin net*)."""
        return len(self.pins(net))

    def module_degree(self, module: int) -> int:
        """Number of nets incident to ``module`` (``d_k`` in the paper)."""
        return len(self.nets_of(module))

    def module_area(self, module: int) -> float:
        """Area of ``module`` (1.0 unless areas were supplied)."""
        if not 0 <= module < self._num_modules:
            raise HypergraphError(f"module index {module} out of range")
        return self._module_areas[module]

    @property
    def module_areas(self) -> Tuple[float, ...]:
        """Areas of all modules, indexed by module."""
        return self._module_areas

    @property
    def total_area(self) -> float:
        """Sum of all module areas."""
        return sum(self._module_areas)

    def net_weight(self, net: int) -> float:
        """Weight (multiplicity/importance) of ``net``; 1.0 by default.

        The paper's algorithms count nets; weights feed the *weighted*
        cut metrics (:func:`repro.partitioning.metrics.weighted_net_cut`)
        and survive file round-trips (e.g. hMETIS fmt-1 files).
        """
        if not 0 <= net < self.num_nets:
            raise HypergraphError(f"net index {net} out of range")
        if self._net_weights is None:
            return 1.0
        return self._net_weights[net]

    @property
    def has_net_weights(self) -> bool:
        """True when explicit net weights were supplied."""
        return self._net_weights is not None

    @property
    def net_weights(self) -> Tuple[float, ...]:
        """Weights of all nets, indexed by net (unit when unweighted)."""
        if self._net_weights is None:
            return (1.0,) * self.num_nets
        return self._net_weights

    def module_name(self, module: int) -> str:
        """Name of ``module``; synthesised as ``m<i>`` when unnamed."""
        if self._module_names is not None:
            return self._module_names[module]
        if not 0 <= module < self._num_modules:
            raise HypergraphError(f"module index {module} out of range")
        return f"m{module}"

    def net_name(self, net: int) -> str:
        """Name of ``net``; synthesised as ``n<j>`` when unnamed."""
        if self._net_names is not None:
            return self._net_names[net]
        if not 0 <= net < self.num_nets:
            raise HypergraphError(f"net index {net} out of range")
        return f"n{net}"

    @property
    def has_module_names(self) -> bool:
        return self._module_names is not None

    @property
    def has_net_names(self) -> bool:
        return self._net_names is not None

    # ------------------------------------------------------------------
    # Iteration helpers
    # ------------------------------------------------------------------
    def iter_nets(self) -> Iterator[Tuple[int, Tuple[int, ...]]]:
        """Yield ``(net_index, pins)`` pairs for every net."""
        return enumerate(self._pins)

    def iter_modules(self) -> Iterator[Tuple[int, Tuple[int, ...]]]:
        """Yield ``(module_index, incident_nets)`` pairs for every module."""
        return enumerate(self._nets_of)

    def net_sizes(self) -> List[int]:
        """List of net sizes indexed by net."""
        return [len(p) for p in self._pins]

    def module_degrees(self) -> List[int]:
        """List of module degrees indexed by module."""
        return [len(n) for n in self._nets_of]

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def isolated_modules(self) -> List[int]:
        """Modules incident to no net at all."""
        return [v for v, nets in enumerate(self._nets_of) if not nets]

    def neighbors_of_module(self, module: int) -> List[int]:
        """All modules sharing at least one net with ``module``."""
        seen = set()
        for net in self.nets_of(module):
            seen.update(self._pins[net])
        seen.discard(module)
        return sorted(seen)

    def nets_sharing_module(self, net: int) -> List[int]:
        """All nets sharing at least one module with ``net``.

        These are exactly the neighbours of ``net`` in the intersection
        graph (Section 2.2 of the paper).
        """
        seen = set()
        for module in self.pins(net):
            seen.update(self._nets_of[module])
        seen.discard(net)
        return sorted(seen)

    def clique_model_nonzeros(self) -> int:
        """Number of off-diagonal nonzeros the clique net model produces.

        A *k*-pin net induces ``k*(k-1)`` directed adjacency entries (the
        matrix is symmetric; both triangles are counted, matching the
        paper's nonzero accounting for, e.g., Test05).  Overlapping nets
        may share entries; this is the upper bound that ignores sharing —
        see :mod:`repro.analysis.sparsity` for the exact count.
        """
        return sum(k * (k - 1) for k in self.net_sizes())

    # ------------------------------------------------------------------
    # CSR core
    # ------------------------------------------------------------------
    @property
    def csr(self):
        """The :class:`~repro.hypergraph.csr.CsrHypergraph` twin.

        Built lazily on first access (O(pins)) and cached; the cached
        arrays are frozen, so sharing across threads is safe.  The
        cache never enters pickles — process-pool workers rebuild it
        once per worker.
        """
        if self._csr is None:
            from .csr import CsrHypergraph

            self._csr = CsrHypergraph.from_hypergraph(self)
        return self._csr

    def __getstate__(self):
        # Exclude the cached CSR arrays: keeps task pickles for the
        # process backend small, at the cost of one O(pins) rebuild
        # per worker.
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot != "_csr"
        }

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)
        self._csr = None

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return (
            f"<Hypergraph{label}: {self.num_modules} modules, "
            f"{self.num_nets} nets, {self.num_pins} pins>"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return (
            self._pins == other._pins
            and self._num_modules == other._num_modules
            and self._module_areas == other._module_areas
            and self.net_weights == other.net_weights
        )

    def __hash__(self) -> int:
        return hash((self._pins, self._num_modules))
