"""Experiment harness: one runner per paper table/figure/claim.

See DESIGN.md's per-experiment index.  ``python -m repro.experiments``
runs everything.
"""

from .ablations import (
    run_completion_ablation,
    run_multilevel_ablation,
    run_netmodel_ablation,
    run_refinement_ablation,
    run_weighting_ablation,
)
from .eig1_comparison import run_eig1_comparison
from .multiway_exp import run_multiway_comparison
from .replication_exp import run_replication_ablation
from .runner import all_experiments, main, run_all
from .runtime import run_runtime
from .sparsity import run_sparsity
from .stability import run_stability
from .table1 import run_table1
from .table2 import run_table2
from .table3 import run_table3
from .threshold import run_threshold_ablation
from .tolerance import run_tolerance_ablation
from .tables import (
    ExperimentResult,
    format_ratio,
    percent_improvement,
    render_table,
)

__all__ = [
    "ExperimentResult",
    "all_experiments",
    "format_ratio",
    "main",
    "percent_improvement",
    "render_table",
    "run_all",
    "run_completion_ablation",
    "run_eig1_comparison",
    "run_multilevel_ablation",
    "run_multiway_comparison",
    "run_netmodel_ablation",
    "run_refinement_ablation",
    "run_replication_ablation",
    "run_runtime",
    "run_sparsity",
    "run_stability",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_threshold_ablation",
    "run_tolerance_ablation",
    "run_weighting_ablation",
]
