"""Experiment X7 — module replication vs cut.

Replication trades block area for cut nets (Kring–Newton-style), which
matters exactly in the paper's §1 applications: multiplexed signals
between emulator boards are scarce, silicon inside a board is not.
This experiment sweeps the replication budget on IG-Match partitions
and reports the cut reduction bought at each area cost.
"""

from __future__ import annotations

from typing import List, Sequence

from ..bench import build_circuit
from ..partitioning import IGMatchConfig, ig_match, replicate_for_cut
from .tables import ExperimentResult

__all__ = ["run_replication_ablation"]


def run_replication_ablation(
    names: Sequence[str] = ("Test02", "Test05"),
    budgets: Sequence[float] = (0.0, 0.01, 0.03, 0.10),
    scale: float = 1.0,
    seed: int = 0,
    split_stride: int = 1,
) -> ExperimentResult:
    """Cut under replication semantics vs replication budget."""
    rows: List[List[object]] = []
    for name in names:
        h = build_circuit(name, seed=seed, scale=scale)
        base = ig_match(
            h, IGMatchConfig(seed=seed, split_stride=split_stride)
        )
        for budget in budgets:
            result = replicate_for_cut(base, max_fraction=budget)
            rows.append(
                [
                    name,
                    f"{100 * budget:.0f}%",
                    result.modules_replicated,
                    result.nets_cut_before,
                    result.nets_cut_after,
                    f"{100 * result.cut_reduction / result.nets_cut_before:.0f}%"
                    if result.nets_cut_before
                    else "0%",
                ]
            )
    return ExperimentResult(
        experiment_id="X7/Replication",
        title=f"Module replication vs cut (IG-Match base), "
        f"scale={scale:g}",
        headers=[
            "Circuit",
            "Budget",
            "Replicated",
            "Cut before",
            "Cut after",
            "Reduction",
        ],
        rows=rows,
        notes=[
            "replication semantics: a net is cut only if non-replicated "
            "pins span both sides",
        ],
    )
