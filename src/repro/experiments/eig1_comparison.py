"""Experiment E4 — IG-Match vs EIG1 (Section 4 text, 22% claim).

EIG1 is the same spectral sweep run on the *module* graph under the
clique net model — the paper's own earlier method.  The comparison
isolates the value of the intersection-graph (dual) representation:
the paper reports a 22% average improvement for IG-Match.
"""

from __future__ import annotations

import statistics
from typing import List, Optional, Sequence

from ..bench import BENCHMARKS, build_circuit
from ..partitioning import EIG1Config, IGMatchConfig, eig1, ig_match
from .tables import ExperimentResult, format_ratio, percent_improvement

__all__ = ["run_eig1_comparison"]


def run_eig1_comparison(
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 0,
    split_stride: int = 1,
) -> ExperimentResult:
    """Compare EIG1 with IG-Match on the stand-in suite."""
    if names is None:
        names = [spec.name for spec in BENCHMARKS]

    rows: List[List[object]] = []
    improvements: List[float] = []
    for name in names:
        h = build_circuit(name, seed=seed, scale=scale)
        eig_result = eig1(h, EIG1Config(seed=seed))
        igm_result = ig_match(
            h, IGMatchConfig(seed=seed, split_stride=split_stride)
        )
        improvement = percent_improvement(
            eig_result.ratio_cut, igm_result.ratio_cut
        )
        improvements.append(improvement)
        rows.append(
            [
                name,
                h.num_modules,
                eig_result.areas,
                eig_result.nets_cut,
                format_ratio(eig_result.ratio_cut),
                igm_result.areas,
                igm_result.nets_cut,
                format_ratio(igm_result.ratio_cut),
                f"{improvement:.0f}",
            ]
        )

    mean_improvement = statistics.fmean(improvements) if improvements else 0.0
    return ExperimentResult(
        experiment_id="E4/EIG1",
        title=f"IG-Match vs EIG1 (clique-model spectral), scale={scale:g}",
        headers=[
            "Test problem",
            "Elements",
            "EIG1 areas",
            "EIG1 cut",
            "EIG1 ratio",
            "IGM areas",
            "IGM cut",
            "IGM ratio",
            "Improv %",
        ],
        rows=rows,
        notes=[
            f"average improvement: {mean_improvement:.1f}% "
            "(paper reports 22% over EIG1)",
        ],
    )
