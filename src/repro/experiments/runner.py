"""Run every experiment and render a full report.

``python -m repro.experiments`` regenerates all paper tables/figures on
the stand-in suite and prints them; ``--markdown`` emits the
EXPERIMENTS.md payload.  ``--scale`` shrinks the circuits for quick runs.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from .ablations import (
    run_completion_ablation,
    run_multilevel_ablation,
    run_netmodel_ablation,
    run_refinement_ablation,
    run_weighting_ablation,
)
from .eig1_comparison import run_eig1_comparison
from .multiway_exp import run_multiway_comparison
from .replication_exp import run_replication_ablation
from .runtime import run_runtime
from .sparsity import run_sparsity
from .stability import run_stability
from .table1 import run_table1
from .table2 import run_table2
from .table3 import run_table3
from .tables import ExperimentResult
from .threshold import run_threshold_ablation
from .tolerance import run_tolerance_ablation

__all__ = ["all_experiments", "run_all", "main"]


def all_experiments(scale: float, seed: int, split_stride: int):
    """Yield ``(name, runner)`` pairs for every experiment."""
    return [
        ("table1", lambda: run_table1(
            scale=scale, seed=seed, split_stride=split_stride)),
        ("table2", lambda: run_table2(
            scale=scale, seed=seed, split_stride=split_stride)),
        ("table3", lambda: run_table3(
            scale=scale, seed=seed, split_stride=split_stride)),
        ("eig1", lambda: run_eig1_comparison(
            scale=scale, seed=seed, split_stride=split_stride)),
        ("sparsity", lambda: run_sparsity(scale=scale, seed=seed)),
        ("runtime", lambda: run_runtime(
            scale=scale, seed=seed, split_stride=split_stride)),
        ("stability", lambda: run_stability(
            scale=scale, seed=seed, split_stride=split_stride)),
        ("threshold", lambda: run_threshold_ablation(
            scale=scale, seed=seed, split_stride=split_stride)),
        ("multiway", lambda: run_multiway_comparison(
            scale=scale, seed=seed)),
        ("tolerance", lambda: run_tolerance_ablation(
            scale=scale, seed=seed, split_stride=split_stride)),
        ("replication", lambda: run_replication_ablation(
            scale=scale, seed=seed, split_stride=split_stride)),
        ("ablation-weights", lambda: run_weighting_ablation(
            scale=scale, seed=seed, split_stride=split_stride)),
        ("ablation-completion", lambda: run_completion_ablation(
            scale=scale, seed=seed, split_stride=split_stride)),
        ("ablation-netmodels", lambda: run_netmodel_ablation(
            scale=scale, seed=seed)),
        ("ablation-refine", lambda: run_refinement_ablation(
            scale=scale, seed=seed, split_stride=split_stride)),
        ("ablation-multilevel", lambda: run_multilevel_ablation(
            scale=scale, seed=seed, split_stride=split_stride)),
    ]


def run_all(
    scale: float = 1.0,
    seed: int = 0,
    split_stride: int = 1,
    only: Optional[Sequence[str]] = None,
) -> List[ExperimentResult]:
    """Run all (or the named) experiments; returns their results."""
    results = []
    for name, runner in all_experiments(scale, seed, split_stride):
        if only and name not in only:
            continue
        results.append(runner())
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables on the stand-in suite.",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="circuit size multiplier (default 1.0 = paper-size)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--stride", type=int, default=1,
        help="IG-Match split stride (1 = evaluate all splits)",
    )
    parser.add_argument(
        "--only", nargs="*", default=None,
        help="subset of experiment names to run",
    )
    parser.add_argument(
        "--markdown", action="store_true",
        help="emit markdown (for EXPERIMENTS.md) instead of ASCII tables",
    )
    args = parser.parse_args(argv)

    start = time.perf_counter()
    for name, runner in all_experiments(args.scale, args.seed, args.stride):
        if args.only and name not in args.only:
            continue
        result = runner()
        print(result.to_markdown() if args.markdown else result.render())
        print()
    print(
        f"# total wall time: {time.perf_counter() - start:.1f}s",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
