"""Experiment X5 — multiway partitioning for hardware emulation (§1).

The paper's motivating application (via Wei–Cheng): mapping a design
onto k emulator boards, minimising multiplexed inter-board signals and
per-board I/O.  Compares three k-way strategies:

* recursive IG-Match bipartition (the paper-era approach);
* direct spectral k-way (Hall embedding + k-means + net-gain
  refinement — the Chan–Schlag–Zien / Yeh-style successors);
* recursive balanced FM (the pre-ratio-cut standard practice).

Reported: spanning (multiplexed) nets, scaled cost, and the worst
block's external-signal count (the binding pin constraint).
"""

from __future__ import annotations

from typing import List, Sequence

from ..bench import build_circuit
from ..partitioning import (
    FMConfig,
    SpectralKWayConfig,
    fm_bipartition,
    recursive_partition,
    scaled_cost,
    spectral_kway,
)
from .tables import ExperimentResult

__all__ = ["run_multiway_comparison"]


def run_multiway_comparison(
    names: Sequence[str] = ("Test02", "Test05"),
    num_blocks: int = 4,
    scale: float = 1.0,
    seed: int = 0,
) -> ExperimentResult:
    """k-way strategy comparison on the stand-in suite."""
    rows: List[List[object]] = []
    for name in names:
        h = build_circuit(name, seed=seed, scale=scale)
        strategies = [
            (
                "recursive IG-Match",
                recursive_partition(h, num_blocks),
            ),
            (
                "spectral k-way",
                spectral_kway(
                    h, num_blocks, SpectralKWayConfig(seed=seed)
                ),
            ),
            (
                "recursive balanced FM",
                recursive_partition(
                    h,
                    num_blocks,
                    bipartitioner=lambda sub: fm_bipartition(
                        sub,
                        FMConfig(balance_tolerance=0.02, seed=seed),
                    ),
                ),
            ),
        ]
        for label, result in strategies:
            worst_io = max(
                result.external_nets_of_block(b)
                for b in range(result.num_blocks)
            )
            rows.append(
                [
                    name,
                    label,
                    result.nets_cut,
                    f"{scaled_cost(h, result.block_of, result.num_blocks):.2e}",
                    worst_io,
                    min(result.block_sizes),
                    max(result.block_sizes),
                ]
            )
    return ExperimentResult(
        experiment_id="X5/Multiway",
        title=f"{num_blocks}-way emulation-board partitioning, "
        f"scale={scale:g}",
        headers=[
            "Circuit",
            "Strategy",
            "Spanning nets",
            "Scaled cost",
            "Worst block I/O",
            "Min block",
            "Max block",
        ],
        rows=rows,
        notes=[
            "spanning nets = signals multiplexed between boards; worst "
            "block I/O drives the test-vector cost of Section 1",
            "ratio-cut-driven strategies trade block balance for far "
            "fewer multiplexed signals (Wei [33] reports 50-70% "
            "hardware-simulation savings from this effect)",
        ],
    )
