"""Entry point: ``python -m repro.experiments``."""

from .runner import main

raise SystemExit(main())
