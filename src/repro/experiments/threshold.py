"""Experiment X4 — input sparsification by net thresholding.

The paper's conclusion proposes speeding up the eigenvector computation
"by additionally sparsifying the input through thresholding" — dropping
nets above a size bound — while footnote 2 warns that discarding large
nets "may actually be discarding useful partitioning information".
This experiment quantifies both sides: intersection-graph nonzeros and
IG-Match quality as the threshold tightens.

The thresholded netlist is used only to *derive the net ordering*; the
completion sweep and the reported metrics always run on the full
netlist, mirroring how the sparsification would actually be deployed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..bench import build_circuit
from ..hypergraph import threshold_nets
from ..intersection import intersection_graph, intersection_nonzeros
from ..partitioning import IGMatchConfig, ig_match
from ..spectral import spectral_ordering
from .tables import ExperimentResult, format_ratio

__all__ = ["run_threshold_ablation"]


def _order_via_threshold(h, max_size: int, seed: int) -> List[int]:
    """Net ordering computed on the thresholded netlist, extended to all
    nets (dropped nets are appended in index order at the heavy end)."""
    sparse, net_map = threshold_nets(h, max_size)
    graph = intersection_graph(sparse, "paper")
    sparse_order = spectral_ordering(graph, seed=seed)
    order = [net_map[j] for j in sparse_order]
    kept = set(order)
    order.extend(j for j in range(h.num_nets) if j not in kept)
    return order


def run_threshold_ablation(
    names: Sequence[str] = ("Test05",),
    thresholds: Sequence[Optional[int]] = (None, 20, 10, 5),
    scale: float = 1.0,
    seed: int = 0,
    split_stride: int = 1,
) -> ExperimentResult:
    """IG-Match quality and IG sparsity vs the net-size threshold."""
    rows: List[List[object]] = []
    for name in names:
        h = build_circuit(name, seed=seed, scale=scale)
        full_nonzeros = intersection_nonzeros(h)
        for max_size in thresholds:
            config = IGMatchConfig(seed=seed, split_stride=split_stride)
            if max_size is None:
                order = None
                nonzeros = full_nonzeros
                label = "none"
            else:
                sparse, _ = threshold_nets(h, max_size)
                nonzeros = intersection_nonzeros(sparse)
                order = _order_via_threshold(h, max_size, seed)
                label = str(max_size)
            result = ig_match(h, config, order=order)
            rows.append(
                [
                    name,
                    label,
                    nonzeros,
                    result.areas,
                    result.nets_cut,
                    format_ratio(result.ratio_cut),
                ]
            )
    return ExperimentResult(
        experiment_id="X4/Threshold",
        title=f"Net-size thresholding of the spectral input, "
        f"scale={scale:g}",
        headers=[
            "Circuit",
            "Threshold",
            "IG nonzeros",
            "Areas",
            "Nets cut",
            "Ratio cut",
        ],
        rows=rows,
        notes=[
            "ordering computed on the thresholded netlist; completion "
            "and metrics on the full netlist",
            "paper footnote 2: aggressive thresholding may discard "
            "useful partitioning information",
        ],
    )
