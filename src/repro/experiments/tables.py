"""ASCII table rendering and experiment result records.

Every experiment produces an :class:`ExperimentResult` — an id, a title,
column headers, data rows and free-form notes — rendered in a fixed-width
format mirroring the paper's tables, and serialisable for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

__all__ = ["ExperimentResult", "render_table", "percent_improvement",
           "format_ratio"]


def format_ratio(value: float) -> str:
    """Format a ratio cut the way the paper does (e.g. ``5.53e-05``)."""
    if value == float("inf"):
        return "inf"
    return f"{value:.2e}"


def percent_improvement(baseline: float, ours: float) -> float:
    """Paper-style percent improvement of ``ours`` over ``baseline``.

    Positive when ``ours`` is lower (better); e.g. Table 2 reports
    ``(rc_RCut - rc_IGMatch) / rc_RCut * 100`` rounded to integers.
    """
    if baseline == 0:
        return 0.0
    return (baseline - ours) / baseline * 100.0


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width ASCII table.

    Numeric-looking cells are right-aligned, text left-aligned.
    """
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def is_numeric(text: str) -> bool:
        stripped = text.replace("-", "").replace("+", "")
        return bool(stripped) and (
            stripped[0].isdigit() or stripped.startswith(".")
        )

    def fmt_row(row: Sequence[str]) -> str:
        out = []
        for i, cell in enumerate(row):
            if is_numeric(cell):
                out.append(cell.rjust(widths[i]))
            else:
                out.append(cell.ljust(widths[i]))
        return "  ".join(out).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Structured output of one experiment run."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]]
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        text = render_table(
            self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}"
        )
        if self.notes:
            text += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return text

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering for EXPERIMENTS.md."""
        lines = [f"### {self.experiment_id}: {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)
