"""Experiment E2 — Table 2: IG-Match vs RCut1.0.

For each benchmark circuit the paper compares the best of 10 RCut1.0
runs against a single deterministic IG-Match run, reporting side areas,
nets cut, ratio cut, and percent improvement (28.8% average in the
paper).  We reproduce the comparison on the synthetic stand-ins with our
RCut reimplementation.
"""

from __future__ import annotations

import statistics
from typing import List, Optional, Sequence

from ..bench import BENCHMARKS, build_circuit, get_spec
from ..partitioning import IGMatchConfig, RCutConfig, ig_match, rcut
from .tables import ExperimentResult, format_ratio, percent_improvement

__all__ = ["run_table2"]


def run_table2(
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 0,
    restarts: int = 10,
    split_stride: int = 1,
) -> ExperimentResult:
    """Regenerate Table 2 (RCut vs IG-Match) on the stand-in suite."""
    if names is None:
        names = [spec.name for spec in BENCHMARKS]

    rows: List[List[object]] = []
    improvements: List[float] = []
    for name in names:
        spec = get_spec(name)
        h = build_circuit(name, seed=seed, scale=scale)
        rcut_result = rcut(h, RCutConfig(restarts=restarts, seed=seed))
        igm_result = ig_match(
            h, IGMatchConfig(seed=seed, split_stride=split_stride)
        )
        improvement = percent_improvement(
            rcut_result.ratio_cut, igm_result.ratio_cut
        )
        improvements.append(improvement)
        paper = spec.paper_igmatch
        paper_gain = (
            percent_improvement(
                spec.paper_rcut.ratio_cut, paper.ratio_cut
            )
            if spec.paper_rcut and paper
            else 0.0
        )
        rows.append(
            [
                name,
                h.num_modules,
                rcut_result.areas,
                rcut_result.nets_cut,
                format_ratio(rcut_result.ratio_cut),
                igm_result.areas,
                igm_result.nets_cut,
                format_ratio(igm_result.ratio_cut),
                f"{improvement:.0f}",
                f"{paper_gain:.0f}",
            ]
        )

    mean_improvement = statistics.fmean(improvements) if improvements else 0.0
    return ExperimentResult(
        experiment_id="E2/Table2",
        title="IG-Match vs RCut (best of "
        f"{restarts} restarts), scale={scale:g}",
        headers=[
            "Test problem",
            "Elements",
            "RCut areas",
            "RCut cut",
            "RCut ratio",
            "IGM areas",
            "IGM cut",
            "IGM ratio",
            "Improv %",
            "Paper %",
        ],
        rows=rows,
        notes=[
            f"average improvement: {mean_improvement:.1f}% "
            "(paper reports 28.8% on the original MCNC/industry suite)",
        ],
    )
