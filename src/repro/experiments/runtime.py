"""Experiment E6 — runtime competitiveness (Section 4 text).

The paper: the eigenvector computation for PrimSC2 took 83 CPU seconds
versus 204 seconds for 10 RCut1.0 runs on a Sun4/60.  Absolute seconds
are machine-bound; we report wall times of the full IG-Match pipeline
versus 10-restart RCut on the same circuit, plus the spectral stage
alone, so the *relative* claim can be assessed.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..bench import build_circuit
from ..intersection import intersection_graph
from ..partitioning import IGMatchConfig, RCutConfig, ig_match, rcut
from ..spectral import spectral_ordering
from .tables import ExperimentResult

__all__ = ["run_runtime"]


def run_runtime(
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 0,
    restarts: int = 10,
    split_stride: int = 1,
) -> ExperimentResult:
    """Wall-time comparison: spectral stage, IG-Match total, RCut x N."""
    if names is None:
        names = ["Prim2"]
    rows: List[List[object]] = []
    for name in names:
        h = build_circuit(name, seed=seed, scale=scale)

        start = time.perf_counter()
        graph = intersection_graph(h, "paper")
        order = spectral_ordering(graph, seed=seed)
        spectral_seconds = time.perf_counter() - start

        igm = ig_match(
            h, IGMatchConfig(seed=seed, split_stride=split_stride),
            order=order,
        )
        rc = rcut(h, RCutConfig(restarts=restarts, seed=seed))

        total_igm = spectral_seconds + igm.elapsed_seconds
        ratio = (
            rc.elapsed_seconds / total_igm if total_igm > 0 else float("inf")
        )
        rows.append(
            [
                name,
                h.num_modules,
                f"{spectral_seconds:.2f}",
                f"{total_igm:.2f}",
                f"{rc.elapsed_seconds:.2f}",
                f"{ratio:.2f}",
            ]
        )
    return ExperimentResult(
        experiment_id="E6/Runtime",
        title=f"Wall time: IG-Match pipeline vs {restarts}x RCut, "
        f"scale={scale:g}",
        headers=[
            "Circuit",
            "Modules",
            "Spectral s",
            "IG-Match s",
            f"RCut x{restarts} s",
            "RCut/IGM",
        ],
        rows=rows,
        notes=[
            "paper (PrimSC2, Sun4/60 CPU s): eigenvector 83 s vs "
            "10x RCut1.0 204 s (ratio 2.46)",
        ],
    )
