"""Experiment E7 — stability: deterministic spectral vs restart-based.

Sections 1.1 and 5 of the paper: iterative methods need many random
starting configurations for "predictable performance, or 'stability'",
while IG-Match "derives its output from a single, deterministic
execution".  This experiment runs each algorithm across seeds and
tabulates best / mean / worst ratio cuts and the relative spread.
"""

from __future__ import annotations

from typing import List, Sequence

from ..analysis import stability_analysis
from ..bench import build_circuit
from ..partitioning import (
    FMConfig,
    IGMatchConfig,
    RCutConfig,
    fm_bipartition,
    ig_match,
    rcut,
)
from .tables import ExperimentResult, format_ratio

__all__ = ["run_stability"]


def run_stability(
    names: Sequence[str] = ("Test02", "Test05"),
    scale: float = 1.0,
    seed: int = 0,
    seeds: Sequence[int] = tuple(range(5)),
    split_stride: int = 1,
) -> ExperimentResult:
    """Ratio-cut spread across seeds, per algorithm and circuit."""
    rows: List[List[object]] = []
    for name in names:
        h = build_circuit(name, seed=seed, scale=scale)
        reports = [
            stability_analysis(
                h,
                lambda hh, s: ig_match(
                    hh, IGMatchConfig(seed=s, split_stride=split_stride)
                ),
                "IG-Match",
                seeds=seeds,
            ),
            stability_analysis(
                h,
                lambda hh, s: rcut(hh, RCutConfig(restarts=1, seed=s)),
                "RCut (1 run)",
                seeds=seeds,
            ),
            stability_analysis(
                h,
                lambda hh, s: fm_bipartition(hh, FMConfig(seed=s)),
                "FM (1 run)",
                seeds=seeds,
            ),
        ]
        for report in reports:
            rows.append(
                [
                    name,
                    report.algorithm,
                    format_ratio(report.best),
                    format_ratio(report.mean),
                    format_ratio(report.worst),
                    f"{100 * report.relative_spread:.0f}%",
                ]
            )
    return ExperimentResult(
        experiment_id="E7/Stability",
        title=f"Result spread across {len(seeds)} seeds, scale={scale:g}",
        headers=[
            "Circuit",
            "Algorithm",
            "Best ratio",
            "Mean ratio",
            "Worst ratio",
            "Spread",
        ],
        rows=rows,
        notes=[
            "IG-Match's spread reflects only eigensolver start-vector "
            "randomness (expected ~0); single-run RCut/FM depend on "
            "their random initial partitions",
        ],
    )
