"""Experiment X6 — relaxed eigensolver convergence (§5).

The paper's conclusion: "The eigenvector computation can be sped up
further ... by relaxation of the numerical convergence criteria."  This
experiment runs the IG-Match pipeline with the in-house Lanczos backend
at several tolerances and reports the eigensolve time and the resulting
partition quality — quantifying how much accuracy the sweep actually
needs.
"""

from __future__ import annotations

import time
from typing import List, Sequence

from ..bench import build_circuit
from ..intersection import intersection_graph
from ..partitioning import IGMatchConfig, ig_match
from ..spectral import spectral_ordering
from .tables import ExperimentResult, format_ratio

__all__ = ["run_tolerance_ablation"]


def run_tolerance_ablation(
    names: Sequence[str] = ("Test02",),
    tolerances: Sequence[float] = (1e-9, 1e-5, 1e-2),
    scale: float = 1.0,
    seed: int = 0,
    split_stride: int = 1,
) -> ExperimentResult:
    """IG-Match quality vs Lanczos convergence tolerance."""
    rows: List[List[object]] = []
    for name in names:
        h = build_circuit(name, seed=seed, scale=scale)
        graph = intersection_graph(h, "paper")
        for tol in tolerances:
            start = time.perf_counter()
            order = spectral_ordering(
                graph, backend="lanczos", seed=seed, tol=tol
            )
            eig_seconds = time.perf_counter() - start
            result = ig_match(
                h,
                IGMatchConfig(seed=seed, split_stride=split_stride),
                order=order,
            )
            rows.append(
                [
                    name,
                    f"{tol:g}",
                    f"{eig_seconds:.3f}",
                    result.areas,
                    result.nets_cut,
                    format_ratio(result.ratio_cut),
                ]
            )
    return ExperimentResult(
        experiment_id="X6/Tolerance",
        title="Relaxed Lanczos convergence vs partition quality, "
        f"scale={scale:g}",
        headers=[
            "Circuit",
            "Tolerance",
            "Eigensolve s",
            "Areas",
            "Nets cut",
            "Ratio cut",
        ],
        rows=rows,
        notes=[
            "paper §5: relaxing the convergence criteria speeds the "
            "eigensolve; the sweep's robustness limits the quality cost",
        ],
    )
