"""Ablation experiments (A1–A3, X1–X3 in DESIGN.md).

* **A1 — IG weighting schemes**: the paper claims several intersection
  graph edge weightings give "extremely similar, high-quality" results.
* **A2 — completion strategy**: with the net ordering held fixed, compare
  the naive split completion, IG-Vote, IG-Match, and recursive IG-Match
  (extension X1).
* **A3 — net models under EIG1**: clique vs star vs path vs cycle.
* **X2 — FM refinement of IG-Match output** (paper conclusion).
* **X3 — multilevel (clustering condensation) hybrid** (paper
  conclusion).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..bench import build_circuit
from ..clustering import MultilevelConfig, multilevel_partition
from ..intersection import available_weightings, intersection_graph
from ..netmodels import available_models
from ..partitioning import (
    EIG1Config,
    IGMatchConfig,
    IGVoteConfig,
    Partition,
    eig1,
    ig_match,
    ig_vote,
    refine,
)
from ..spectral import spectral_ordering
from .tables import ExperimentResult, format_ratio

__all__ = [
    "run_weighting_ablation",
    "run_completion_ablation",
    "run_netmodel_ablation",
    "run_refinement_ablation",
    "run_multilevel_ablation",
]

_DEFAULT_NAMES = ("Prim1", "Test02", "Test05")


def run_weighting_ablation(
    names: Sequence[str] = _DEFAULT_NAMES,
    scale: float = 1.0,
    seed: int = 0,
    split_stride: int = 1,
) -> ExperimentResult:
    """A1: IG-Match under every intersection-graph weighting scheme."""
    rows: List[List[object]] = []
    for name in names:
        h = build_circuit(name, seed=seed, scale=scale)
        for weighting in available_weightings():
            result = ig_match(
                h,
                IGMatchConfig(
                    weighting=weighting, seed=seed, split_stride=split_stride
                ),
            )
            rows.append(
                [
                    name,
                    weighting,
                    result.areas,
                    result.nets_cut,
                    format_ratio(result.ratio_cut),
                ]
            )
    return ExperimentResult(
        experiment_id="A1/Weights",
        title=f"IG edge-weighting ablation (IG-Match), scale={scale:g}",
        headers=["Circuit", "Weighting", "Areas", "Nets cut", "Ratio cut"],
        rows=rows,
        notes=[
            "paper: alternative weightings give 'extremely similar, "
            "high-quality' results (robustness of the dual representation)",
        ],
    )


def _naive_split_completion(h, order) -> Partition:
    """The strawman completion: best prefix split of the net ordering,
    with each module assigned to the side where most of its incident
    swept/unswept nets are (ties to the unswept side)."""
    best: Optional[Partition] = None
    position = {net: i for i, net in enumerate(order)}
    # Evaluate a handful of candidate ranks cheaply: each module votes by
    # the mean position of its nets.
    for rank in range(1, len(order)):
        sides = []
        for module in range(h.num_modules):
            nets = h.nets_of(module)
            if not nets:
                sides.append(1)
                continue
            swept = sum(1 for n in nets if position[n] < rank)
            sides.append(0 if 2 * swept > len(nets) else 1)
        if 0 not in sides or 1 not in sides:
            continue
        candidate = Partition(h, sides)
        if best is None or candidate.ratio_cut < best.ratio_cut:
            best = candidate
    if best is None:
        raise ValueError("naive completion found no feasible split")
    return best


def run_completion_ablation(
    names: Sequence[str] = _DEFAULT_NAMES,
    scale: float = 1.0,
    seed: int = 0,
    split_stride: int = 1,
) -> ExperimentResult:
    """A2 + X1: completion strategies over one shared net ordering."""
    rows: List[List[object]] = []
    for name in names:
        h = build_circuit(name, seed=seed, scale=scale)
        order = spectral_ordering(
            intersection_graph(h, "paper"), seed=seed
        )
        naive = _naive_split_completion(h, order)
        rows.append(
            [
                name,
                "naive-majority",
                naive.area_string,
                naive.num_nets_cut,
                format_ratio(naive.ratio_cut),
            ]
        )
        vote = ig_vote(h, IGVoteConfig(seed=seed), order=order)
        rows.append(
            [
                name,
                "IG-Vote",
                vote.areas,
                vote.nets_cut,
                format_ratio(vote.ratio_cut),
            ]
        )
        igm = ig_match(
            h,
            IGMatchConfig(seed=seed, split_stride=split_stride),
            order=order,
        )
        rows.append(
            [
                name,
                "IG-Match",
                igm.areas,
                igm.nets_cut,
                format_ratio(igm.ratio_cut),
            ]
        )
        rec = ig_match(
            h,
            IGMatchConfig(
                seed=seed, split_stride=split_stride, recursive_depth=1
            ),
            order=order,
        )
        rows.append(
            [
                name,
                "IG-Match-recursive",
                rec.areas,
                rec.nets_cut,
                format_ratio(rec.ratio_cut),
            ]
        )
    return ExperimentResult(
        experiment_id="A2/Completion",
        title="Completion-strategy ablation over a shared net ordering, "
        f"scale={scale:g}",
        headers=["Circuit", "Completion", "Areas", "Nets cut", "Ratio cut"],
        rows=rows,
        notes=[
            "the ordering is identical per circuit; differences are "
            "entirely due to the completion strategy",
        ],
    )


def run_netmodel_ablation(
    names: Sequence[str] = _DEFAULT_NAMES,
    scale: float = 1.0,
    seed: int = 0,
) -> ExperimentResult:
    """A3: EIG1 under every net model."""
    rows: List[List[object]] = []
    for name in names:
        h = build_circuit(name, seed=seed, scale=scale)
        for model in available_models():
            result = eig1(h, EIG1Config(net_model=model, seed=seed))
            rows.append(
                [
                    name,
                    model,
                    result.areas,
                    result.nets_cut,
                    format_ratio(result.ratio_cut),
                    result.details["graph_nonzeros"],
                ]
            )
    return ExperimentResult(
        experiment_id="A3/NetModels",
        title=f"Net-model ablation (EIG1), scale={scale:g}",
        headers=[
            "Circuit",
            "Net model",
            "Areas",
            "Nets cut",
            "Ratio cut",
            "Nonzeros",
        ],
        rows=rows,
        notes=[
            "the paper's Section 2.1: sparse asymmetric models (star, "
            "path) trade quality for sparsity; the clique model is dense",
        ],
    )


def run_refinement_ablation(
    names: Sequence[str] = _DEFAULT_NAMES,
    scale: float = 1.0,
    seed: int = 0,
    split_stride: int = 1,
) -> ExperimentResult:
    """X2: iterative post-refinement of IG-Match output."""
    rows: List[List[object]] = []
    for name in names:
        h = build_circuit(name, seed=seed, scale=scale)
        base = ig_match(
            h, IGMatchConfig(seed=seed, split_stride=split_stride)
        )
        polished = refine(base)
        rows.append(
            [
                name,
                format_ratio(base.ratio_cut),
                format_ratio(polished.ratio_cut),
                "yes" if polished.details.get("refined") else "no",
            ]
        )
    return ExperimentResult(
        experiment_id="X2/Refine",
        title=f"FM-style refinement of IG-Match output, scale={scale:g}",
        headers=["Circuit", "IG-Match ratio", "Refined ratio", "Improved"],
        rows=rows,
        notes=[
            "paper conclusion: 'the ratio cuts so obtained may optionally "
            "be improved by using standard iterative techniques'",
        ],
    )


def run_multilevel_ablation(
    names: Sequence[str] = _DEFAULT_NAMES,
    scale: float = 1.0,
    seed: int = 0,
    split_stride: int = 1,
) -> ExperimentResult:
    """X3: the clustering-condensation hybrid vs flat IG-Match."""
    rows: List[List[object]] = []
    for name in names:
        h = build_circuit(name, seed=seed, scale=scale)
        flat = ig_match(
            h, IGMatchConfig(seed=seed, split_stride=split_stride)
        )
        # Scale the coarsening target with the circuits so scaled-down
        # runs still exercise at least one coarsening level.
        target = max(20, round(200 * scale))
        hybrid = multilevel_partition(
            h, MultilevelConfig(seed=seed, target_modules=target)
        )
        rows.append(
            [
                name,
                format_ratio(flat.ratio_cut),
                f"{flat.elapsed_seconds:.2f}",
                format_ratio(hybrid.ratio_cut),
                f"{hybrid.elapsed_seconds:.2f}",
                hybrid.details["levels"],
            ]
        )
    return ExperimentResult(
        experiment_id="X3/Multilevel",
        title=f"Clustering-condensation hybrid vs flat IG-Match, "
        f"scale={scale:g}",
        headers=[
            "Circuit",
            "Flat ratio",
            "Flat s",
            "Hybrid ratio",
            "Hybrid s",
            "Levels",
        ],
        rows=rows,
        notes=[
            "paper conclusion: condensing the input via clustering before "
            "partitioning 'is also promising'",
        ],
    )
