"""Experiment E3 — Table 3: IG-Match vs IG-Vote.

Both algorithms consume the *same* sorted second eigenvector of the same
intersection graph; only the completion differs (voting threshold vs
matching/MIS).  The paper reports a 7% average improvement with IG-Match
never worse.  We feed the identical net ordering to both completions to
isolate exactly that comparison.
"""

from __future__ import annotations

import statistics
from typing import List, Optional, Sequence

from ..bench import BENCHMARKS, build_circuit, get_spec
from ..intersection import intersection_graph
from ..partitioning import (
    IGMatchConfig,
    IGVoteConfig,
    ig_match,
    ig_vote,
)
from ..spectral import spectral_ordering
from .tables import ExperimentResult, format_ratio, percent_improvement

__all__ = ["run_table3"]


def run_table3(
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 0,
    split_stride: int = 1,
) -> ExperimentResult:
    """Regenerate Table 3 (IG-Vote vs IG-Match) on the stand-in suite."""
    if names is None:
        names = [spec.name for spec in BENCHMARKS]

    rows: List[List[object]] = []
    improvements: List[float] = []
    never_worse = True
    for name in names:
        spec = get_spec(name)
        h = build_circuit(name, seed=seed, scale=scale)
        order = spectral_ordering(
            intersection_graph(h, "paper"), backend="scipy", seed=seed
        )
        vote_result = ig_vote(h, IGVoteConfig(seed=seed), order=order)
        igm_result = ig_match(
            h,
            IGMatchConfig(seed=seed, split_stride=split_stride),
            order=order,
        )
        improvement = percent_improvement(
            vote_result.ratio_cut, igm_result.ratio_cut
        )
        improvements.append(improvement)
        if igm_result.ratio_cut > vote_result.ratio_cut + 1e-15:
            never_worse = False
        paper = spec.paper_igmatch
        paper_gain = (
            percent_improvement(
                spec.paper_igvote.ratio_cut, paper.ratio_cut
            )
            if spec.paper_igvote and paper
            else 0.0
        )
        rows.append(
            [
                name,
                h.num_modules,
                vote_result.areas,
                vote_result.nets_cut,
                format_ratio(vote_result.ratio_cut),
                igm_result.areas,
                igm_result.nets_cut,
                format_ratio(igm_result.ratio_cut),
                f"{improvement:.0f}",
                f"{paper_gain:.0f}",
            ]
        )

    mean_improvement = statistics.fmean(improvements) if improvements else 0.0
    notes = [
        f"average improvement: {mean_improvement:.1f}% "
        "(paper reports 7%)",
        "IG-Match never worse than IG-Vote: "
        + ("YES — matches the paper's uniform dominance"
           if never_worse else "NO"),
    ]
    return ExperimentResult(
        experiment_id="E3/Table3",
        title=f"IG-Match vs IG-Vote (shared net ordering), scale={scale:g}",
        headers=[
            "Test problem",
            "Elements",
            "Vote areas",
            "Vote cut",
            "Vote ratio",
            "IGM areas",
            "IGM cut",
            "IGM ratio",
            "Improv %",
            "Paper %",
        ],
        rows=rows,
        notes=notes,
    )
