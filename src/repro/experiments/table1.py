"""Experiment E1 — Table 1: cut statistics for k-pin nets.

The paper optimises a ratio-cut partition of MCNC Primary2 and tabulates,
per net size, the number of nets and the number cut, observing that the
cut probability is *not* monotone in net size.  We reproduce the table on
the Prim2 stand-in (whose net-size histogram matches the paper's column 2
exactly at full scale) using an IG-Match-optimised partition, and print
the paper's "Number Cut" column alongside ours.
"""

from __future__ import annotations


from ..analysis import cut_stats_by_size, is_cut_probability_monotone
from ..bench import PRIMARY2_CUT_HISTOGRAM, build_circuit
from ..partitioning import IGMatchConfig, ig_match
from .tables import ExperimentResult

__all__ = ["run_table1"]


def run_table1(
    scale: float = 1.0, seed: int = 0, split_stride: int = 1
) -> ExperimentResult:
    """Regenerate Table 1 on the Prim2 stand-in.

    At ``scale=1.0`` the net-size histogram ("Number of Nets" column)
    matches the paper row for row by construction; the "Number Cut"
    column is measured on our optimised partition and shown next to the
    paper's.
    """
    h = build_circuit("Prim2", seed=seed, scale=scale)
    result = ig_match(h, IGMatchConfig(seed=seed, split_stride=split_stride))
    rows_data = cut_stats_by_size(result.partition)

    rows = []
    for row in rows_data:
        paper_cut = (
            PRIMARY2_CUT_HISTOGRAM.get(row.net_size, "-")
            if scale == 1.0
            else "-"
        )
        rows.append(
            [
                row.net_size,
                row.num_nets,
                row.num_cut,
                paper_cut,
                f"{row.cut_fraction:.3f}",
            ]
        )

    monotone = is_cut_probability_monotone(rows_data)
    notes = [
        f"partition: {result.partition.area_string}, "
        f"{result.nets_cut} nets cut, ratio cut "
        f"{result.ratio_cut:.3e} (IG-Match)",
        "cut probability monotone in net size: "
        + ("YES (unexpected)" if monotone else "NO — matches the paper's "
           "non-monotonicity observation"),
    ]
    return ExperimentResult(
        experiment_id="E1/Table1",
        title="Cut statistics for k-pin nets (Prim2 stand-in)",
        headers=["Net Size", "Number of Nets", "Number Cut",
                 "Paper Cut", "Cut Fraction"],
        rows=rows,
        notes=notes,
    )
