"""Experiment E5 — representation sparsity (Sections 1.2/5 text).

The paper: the Test05 intersection graph has 19 935 adjacency nonzeros
versus 219 811 under the standard clique model — over 10x sparser.  We
tabulate both counts for every stand-in circuit.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..analysis import compare_sparsity
from ..bench import BENCHMARKS, build_circuit
from .tables import ExperimentResult

__all__ = ["run_sparsity"]

#: The paper's quoted nonzero counts for Test05 under each representation.
PAPER_TEST05_CLIQUE_NONZEROS = 219811
PAPER_TEST05_IG_NONZEROS = 19935


def run_sparsity(
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 0,
) -> ExperimentResult:
    """Count adjacency nonzeros under both representations per circuit."""
    if names is None:
        names = [spec.name for spec in BENCHMARKS]
    rows: List[List[object]] = []
    for name in names:
        h = build_circuit(name, seed=seed, scale=scale)
        cmp = compare_sparsity(h)
        rows.append(
            [
                name,
                h.num_modules,
                h.num_nets,
                cmp.clique_nonzeros,
                cmp.intersection_nonzeros,
                f"{cmp.sparsity_ratio:.1f}",
            ]
        )
    paper_ratio = PAPER_TEST05_CLIQUE_NONZEROS / PAPER_TEST05_IG_NONZEROS
    return ExperimentResult(
        experiment_id="E5/Sparsity",
        title=f"Adjacency nonzeros: clique model vs intersection graph, "
        f"scale={scale:g}",
        headers=[
            "Circuit",
            "Modules",
            "Nets",
            "Clique nz",
            "IG nz",
            "Clique/IG",
        ],
        rows=rows,
        notes=[
            f"paper (real Test05): clique {PAPER_TEST05_CLIQUE_NONZEROS}, "
            f"IG {PAPER_TEST05_IG_NONZEROS} "
            f"({paper_ratio:.1f}x sparser)",
        ],
    )
