"""Module replication for cut reduction.

A classic companion to 1990s netlist bipartitioning (Kring–Newton
style): duplicating a boundary module onto both sides lets every net it
drives be satisfied locally, un-cutting nets at the price of extra
area — directly relevant to the paper's packaging and
hardware-simulation applications, where inter-block signals are the
scarce resource and silicon within a block is cheap.

Semantics: a replicated module exists on both sides; a net is cut only
if its *non-replicated* pins span both sides (a side "has" the net if
every pin is on that side or replicated).  Greedy selection replicates
the module with the highest immediate gain — the number of currently
cut nets for which it is the sole hold-out pin on its side — until the
budget is exhausted or no positive-gain module remains.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from ..errors import PartitionError
from ..hypergraph import Hypergraph
from .partition import Partition, PartitionResult

__all__ = ["ReplicationResult", "replication_cut", "replicate_for_cut"]


def replication_cut(
    h: Hypergraph,
    sides: Sequence[int],
    replicated: Set[int],
) -> int:
    """Nets cut under replication semantics.

    A net is uncut iff some side holds all its pins, counting
    replicated modules as present on both sides.
    """
    if len(sides) != h.num_modules:
        raise PartitionError(
            f"{len(sides)} sides for {h.num_modules} modules"
        )
    cut = 0
    for _, pins in h.iter_nets():
        if len(pins) < 2:
            continue
        exclusive_u = any(
            sides[p] == 0 and p not in replicated for p in pins
        )
        exclusive_w = any(
            sides[p] == 1 and p not in replicated for p in pins
        )
        # The net is pinned to a side by each exclusive pin; it is cut
        # exactly when it has exclusive pins on both sides.
        if exclusive_u and exclusive_w:
            cut += 1
    return cut


@dataclass
class ReplicationResult:
    """Outcome of a replication pass."""

    partition: Partition
    replicated: List[int]
    nets_cut_before: int
    nets_cut_after: int
    elapsed_seconds: float = 0.0
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def modules_replicated(self) -> int:
        return len(self.replicated)

    @property
    def cut_reduction(self) -> int:
        return self.nets_cut_before - self.nets_cut_after

    def __str__(self) -> str:
        return (
            f"replication: {self.modules_replicated} modules -> "
            f"cut {self.nets_cut_before} -> {self.nets_cut_after}"
        )


def replicate_for_cut(
    result: PartitionResult,
    max_fraction: float = 0.05,
) -> ReplicationResult:
    """Greedily replicate boundary modules of ``result``'s partition.

    ``max_fraction`` caps the number of replicated modules as a share
    of the module count (replication costs area).  The partition itself
    is left untouched; the returned record carries the replica list and
    the cut under replication semantics.
    """
    if not 0.0 <= max_fraction <= 1.0:
        raise PartitionError(
            f"max_fraction must lie in [0, 1], got {max_fraction}"
        )
    start = time.perf_counter()
    partition = result.partition
    h = partition.hypergraph
    sides = list(partition.sides)
    budget = int(max_fraction * h.num_modules)

    replicated: Set[int] = set()
    cut_now = replication_cut(h, sides, replicated)
    before = cut_now
    order: List[int] = []

    def gain(module: int) -> int:
        """Cut nets un-cut by replicating ``module`` right now."""
        if module in replicated:
            return 0
        side = sides[module]
        improvement = 0
        for net in h.nets_of(module):
            pins = h.pins(net)
            if len(pins) < 2:
                continue
            exclusive_same = [
                p
                for p in pins
                if sides[p] == side and p not in replicated
            ]
            exclusive_other = any(
                sides[p] != side and p not in replicated for p in pins
            )
            if exclusive_other and exclusive_same == [module]:
                improvement += 1
        return improvement

    while len(replicated) < budget:
        best_module = None
        best_gain = 0
        for module in range(h.num_modules):
            g = gain(module)
            if g > best_gain:
                best_gain = g
                best_module = module
        if best_module is None:
            break
        replicated.add(best_module)
        order.append(best_module)
        cut_now -= best_gain

    elapsed = time.perf_counter() - start
    actual = replication_cut(h, sides, replicated)
    return ReplicationResult(
        partition=partition,
        replicated=order,
        nets_cut_before=before,
        nets_cut_after=actual,
        elapsed_seconds=elapsed,
        details={
            "budget": budget,
            "max_fraction": max_fraction,
            "base_algorithm": result.algorithm,
        },
    )
