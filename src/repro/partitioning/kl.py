"""Kernighan–Lin graph bisection.

The 1970 ancestor of the iterative-improvement family (Section 1.1).
KL operates on a *graph*, so the netlist is first expanded with a net
model (standard clique by default); the objective is the weighted edge
cut under an exact bisection.  Each pass greedily selects the best
pair-swap sequence and keeps the best prefix.

Included as a historical baseline and for the net-model ablations; the
paper's quality comparisons use the FM/RCut family.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import PartitionError
from ..graph import Graph
from ..hypergraph import Hypergraph
from ..netmodels import get_model
from .metrics import graph_edge_cut
from .partition import Partition, PartitionResult

__all__ = ["KLConfig", "kl_bisection", "kl_bisection_graph"]


@dataclass(frozen=True)
class KLConfig:
    """Options for :func:`kl_bisection`."""

    net_model: str = "clique"
    max_passes: int = 10
    seed: int = 0


def _d_values(g: Graph, sides: List[int]) -> List[float]:
    """D(v) = external cost - internal cost for every vertex."""
    d = [0.0] * g.num_vertices
    for u, v, w in g.edges():
        if sides[u] == sides[v]:
            d[u] -= w
            d[v] -= w
        else:
            d[u] += w
            d[v] += w
    return d


def kl_bisection_graph(
    g: Graph,
    initial_sides: Optional[Sequence[int]] = None,
    max_passes: int = 10,
    seed: int = 0,
) -> List[int]:
    """Kernighan–Lin on a graph; returns the final side assignment."""
    n = g.num_vertices
    if n < 2:
        raise PartitionError("KL needs at least 2 vertices")
    rng = random.Random(seed)
    if initial_sides is None:
        order = list(range(n))
        rng.shuffle(order)
        sides = [0] * n
        for v in order[n // 2 :]:
            sides[v] = 1
    else:
        sides = [int(s) for s in initial_sides]
        if len(sides) != n:
            raise PartitionError("initial_sides length mismatch")

    for _ in range(max_passes):
        d = _d_values(g, sides)
        locked = [False] * n
        gains: List[float] = []
        swaps: List[tuple] = []
        work_sides = list(sides)

        num_pairs = min(
            sum(1 for s in sides if s == 0), sum(1 for s in sides if s == 1)
        )
        for _ in range(num_pairs):
            best_gain = None
            best_pair = None
            side0 = [v for v in range(n) if work_sides[v] == 0 and not locked[v]]
            side1 = [v for v in range(n) if work_sides[v] == 1 and not locked[v]]
            if not side0 or not side1:
                break
            # Examine the most promising candidates on each side; exact
            # KL checks all pairs, which we do (candidate lists are whole
            # sides) but with an early bound via sorted D values.
            # Candidate truncation: examining the 64 highest-D vertices
            # per side makes the pair scan near-linear while losing
            # almost nothing — the optimal pair maximises
            # D(a) + D(b) - 2w(a,b) and edge weights are small relative
            # to D spreads on netlist graphs.
            side0.sort(key=lambda v: -d[v])
            side1.sort(key=lambda v: -d[v])
            for a in side0[:64]:
                for b in side1[:64]:
                    gain = d[a] + d[b] - 2 * g.weight(a, b)
                    if best_gain is None or gain > best_gain:
                        best_gain = gain
                        best_pair = (a, b)
            if best_pair is None:
                break
            a, b = best_pair
            gains.append(best_gain)
            swaps.append(best_pair)
            locked[a] = locked[b] = True
            a_side_before = work_sides[a]
            work_sides[a], work_sides[b] = work_sides[b], work_sides[a]
            # Update D for unlocked vertices (Kernighan–Lin rule, relative
            # to the vertices' sides before the swap).  Only neighbours
            # of a or b change.
            for x, w in g.neighbor_weights(a):
                if not locked[x]:
                    d[x] += 2 * w if work_sides[x] == a_side_before else -2 * w
            for x, w in g.neighbor_weights(b):
                if not locked[x]:
                    d[x] += -2 * w if work_sides[x] == a_side_before else 2 * w

        # Best prefix of the swap sequence.
        best_k = 0
        best_total = 0.0
        total = 0.0
        for k, gain in enumerate(gains, start=1):
            total += gain
            if total > best_total:
                best_total = total
                best_k = k
        if best_k == 0 or best_total <= 1e-12:
            break
        for a, b in swaps[:best_k]:
            sides[a], sides[b] = sides[b], sides[a]
    return sides


def kl_bisection(
    h: Hypergraph, config: KLConfig = KLConfig()
) -> PartitionResult:
    """Bisect ``h`` with KL on its net-model graph."""
    if h.num_modules < 2:
        raise PartitionError("KL needs at least 2 modules")
    start = time.perf_counter()
    g = get_model(config.net_model).to_graph(h)
    sides = kl_bisection_graph(
        g, max_passes=config.max_passes, seed=config.seed
    )
    elapsed = time.perf_counter() - start
    return PartitionResult(
        algorithm="KL",
        partition=Partition(h, sides),
        elapsed_seconds=elapsed,
        details={
            "net_model": config.net_model,
            "graph_edge_cut": graph_edge_cut(g, sides),
            "seed": config.seed,
        },
    )
