"""Module bipartitions and result records.

:class:`Partition` couples a hypergraph with an assignment of every module
to side ``U`` (0) or side ``W`` (1) and lazily evaluates the quality
metrics used throughout the paper: the net cut and the Wei–Cheng ratio cut
``e(U, W) / (|U| · |W|)``.

:class:`PartitionResult` is the uniform record the algorithms return, and
renders the same columns the paper's tables report (areas, nets cut, ratio
cut).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import PartitionError
from ..hypergraph import Hypergraph
from .metrics import (
    cut_net_indices,
    net_cut_count,
    ratio_cut_cost,
)

__all__ = ["Partition", "PartitionResult"]


class Partition:
    """A bipartition ``(U, W)`` of a hypergraph's modules.

    ``side_of[v]`` is 0 for U and 1 for W.  Instances are immutable; the
    iterative algorithms work on plain arrays internally and freeze into
    a ``Partition`` at the end.

    Examples
    --------
    >>> h = Hypergraph([[0, 1], [1, 2], [2, 3]])
    >>> p = Partition(h, [0, 0, 1, 1])
    >>> p.num_nets_cut
    1
    >>> p.ratio_cut
    0.25
    """

    __slots__ = ("_h", "_side", "_cut_cache")

    def __init__(self, h: Hypergraph, side_of: Sequence[int]):
        if len(side_of) != h.num_modules:
            raise PartitionError(
                f"side assignment has {len(side_of)} entries for "
                f"{h.num_modules} modules"
            )
        sides = tuple(int(s) for s in side_of)
        bad = [s for s in sides if s not in (0, 1)]
        if bad:
            raise PartitionError(
                f"sides must be 0 or 1, found {bad[0]!r}"
            )
        if sides and (0 not in sides or 1 not in sides):
            raise PartitionError("both sides of a partition must be non-empty")
        self._h = h
        self._side = sides
        self._cut_cache: Optional[Tuple[int, ...]] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_u_side(cls, h: Hypergraph, u_modules: Iterable[int]) -> "Partition":
        """Build from the set of modules on the U side."""
        u_set = set(int(v) for v in u_modules)
        for v in u_set:
            if not 0 <= v < h.num_modules:
                raise PartitionError(f"module index {v} out of range")
        return cls(h, [0 if v in u_set else 1 for v in range(h.num_modules)])

    # ------------------------------------------------------------------
    @property
    def hypergraph(self) -> Hypergraph:
        return self._h

    @property
    def sides(self) -> Tuple[int, ...]:
        """The full side assignment tuple (0 = U, 1 = W)."""
        return self._side

    def side(self, module: int) -> int:
        if not 0 <= module < len(self._side):
            raise PartitionError(f"module index {module} out of range")
        return self._side[module]

    @property
    def u_modules(self) -> List[int]:
        return [v for v, s in enumerate(self._side) if s == 0]

    @property
    def w_modules(self) -> List[int]:
        return [v for v, s in enumerate(self._side) if s == 1]

    @property
    def u_size(self) -> int:
        return sum(1 for s in self._side if s == 0)

    @property
    def w_size(self) -> int:
        return len(self._side) - self.u_size

    @property
    def u_area(self) -> float:
        areas = self._h.module_areas
        return sum(areas[v] for v, s in enumerate(self._side) if s == 0)

    @property
    def w_area(self) -> float:
        return self._h.total_area - self.u_area

    # ------------------------------------------------------------------
    @property
    def cut_nets(self) -> Tuple[int, ...]:
        """Indices of nets with pins on both sides."""
        if self._cut_cache is None:
            self._cut_cache = tuple(cut_net_indices(self._h, self._side))
        return self._cut_cache

    @property
    def num_nets_cut(self) -> int:
        return len(self.cut_nets)

    @property
    def weighted_nets_cut(self) -> float:
        """Total weight of cut nets (= ``num_nets_cut`` if unweighted)."""
        return sum(self._h.net_weight(net) for net in self.cut_nets)

    @property
    def ratio_cut(self) -> float:
        """``e(U, W) / (|U| · |W|)`` with module-count denominators.

        The module-count convention matches the paper's tables (areas in
        those tables are element counts; see DESIGN.md).
        """
        return ratio_cut_cost(self.num_nets_cut, self.u_size, self.w_size)

    @property
    def area_string(self) -> str:
        """``"<U area>:<W area>"`` — the tables' Areas column."""
        u, w = self.u_area, self.w_area
        if u == int(u) and w == int(w):
            return f"{int(u)}:{int(w)}"
        return f"{u:g}:{w:g}"

    # ------------------------------------------------------------------
    def flipped(self) -> "Partition":
        """The same partition with U and W exchanged."""
        return Partition(self._h, [1 - s for s in self._side])

    def canonical(self) -> "Partition":
        """Orient so that module 0 is on side U — for comparisons."""
        if self._side and self._side[0] == 1:
            return self.flipped()
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        if self._h is not other._h and self._h != other._h:
            return False
        return (
            self._side == other._side
            or self.flipped()._side == other._side
        )

    def __hash__(self) -> int:
        return hash(min(self._side, tuple(1 - s for s in self._side)))

    def __repr__(self) -> str:
        return (
            f"<Partition {self.u_size}:{self.w_size}, "
            f"{self.num_nets_cut} nets cut, "
            f"ratio cut {self.ratio_cut:.4g}>"
        )


@dataclass
class PartitionResult:
    """Uniform record returned by every partitioning algorithm."""

    algorithm: str
    partition: Partition
    elapsed_seconds: float = 0.0
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def nets_cut(self) -> int:
        return self.partition.num_nets_cut

    @property
    def ratio_cut(self) -> float:
        return self.partition.ratio_cut

    @property
    def areas(self) -> str:
        return self.partition.area_string

    def row(self) -> Dict[str, object]:
        """The table row the paper reports for one run."""
        return {
            "algorithm": self.algorithm,
            "areas": self.areas,
            "nets_cut": self.nets_cut,
            "ratio_cut": self.ratio_cut,
            "seconds": round(self.elapsed_seconds, 3),
        }

    def __str__(self) -> str:
        return (
            f"{self.algorithm}: areas {self.areas}, "
            f"{self.nets_cut} nets cut, ratio cut {self.ratio_cut:.4g} "
            f"({self.elapsed_seconds:.2f}s)"
        )
