"""Recursive multiway partitioning.

The paper's applications (hardware simulation, test, packaging) often
need more than two blocks; the standard approach — and the one Wei–Cheng
use for their hierarchical-design results — is recursive bipartitioning.
:func:`recursive_partition` splits the netlist into ``2^depth`` (or any
target count of) blocks by recursively applying a bipartitioning
algorithm (IG-Match by default) to induced sub-hypergraphs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import PartitionError
from ..hypergraph import Hypergraph, induced_subhypergraph
from .igmatch import IGMatchConfig, ig_match
from .partition import PartitionResult

__all__ = ["MultiwayResult", "recursive_partition"]

Bipartitioner = Callable[[Hypergraph], PartitionResult]


@dataclass
class MultiwayResult:
    """A k-way module partition.

    ``block_of[v]`` gives module v's block in ``0 .. num_blocks-1``;
    ``nets_cut`` counts nets spanning two or more blocks (the signals a
    hardware simulator would have to multiplex between boards).
    """

    hypergraph: Hypergraph
    block_of: List[int]
    num_blocks: int
    elapsed_seconds: float = 0.0
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def blocks(self) -> List[List[int]]:
        out: List[List[int]] = [[] for _ in range(self.num_blocks)]
        for v, b in enumerate(self.block_of):
            out[b].append(v)
        return out

    @property
    def nets_cut(self) -> int:
        count = 0
        for _, pins in self.hypergraph.iter_nets():
            if not pins:
                continue
            first = self.block_of[pins[0]]
            if any(self.block_of[p] != first for p in pins[1:]):
                count += 1
        return count

    @property
    def block_sizes(self) -> List[int]:
        sizes = [0] * self.num_blocks
        for b in self.block_of:
            sizes[b] += 1
        return sizes

    def external_nets_of_block(self, block: int) -> int:
        """Nets with a pin in ``block`` and a pin outside it — the I/O
        count of that block (the test-vector metric of Section 1)."""
        count = 0
        for _, pins in self.hypergraph.iter_nets():
            inside = sum(1 for p in pins if self.block_of[p] == block)
            if 0 < inside < len(pins):
                count += 1
        return count


def _default_bipartitioner(h: Hypergraph) -> PartitionResult:
    """IG-Match, falling back to RCut on netlists where no IG-Match
    completion is feasible (tiny dense sub-blocks whose winner nets can
    absorb every module)."""
    try:
        return ig_match(h, IGMatchConfig())
    except PartitionError:
        from .rcut import RCutConfig, rcut

        return rcut(h, RCutConfig(restarts=2))


def recursive_partition(
    h: Hypergraph,
    num_blocks: int,
    bipartitioner: Optional[Bipartitioner] = None,
    min_block_modules: int = 2,
) -> MultiwayResult:
    """Split ``h`` into ``num_blocks`` blocks by recursive bipartition.

    At each level the largest remaining block is bipartitioned until the
    target count is reached, so non-power-of-two targets work.  Blocks
    smaller than ``min_block_modules`` (or whose sub-netlist degenerates)
    are never split further; if no block can be split before the target
    is reached, a :class:`PartitionError` is raised.
    """
    if num_blocks < 2:
        raise PartitionError(f"num_blocks must be >= 2, got {num_blocks}")
    if num_blocks > h.num_modules:
        raise PartitionError(
            f"cannot make {num_blocks} blocks from {h.num_modules} modules"
        )
    if bipartitioner is None:
        bipartitioner = _default_bipartitioner

    start = time.perf_counter()
    block_of = [0] * h.num_modules
    block_members: Dict[int, List[int]] = {0: list(range(h.num_modules))}
    unsplittable: set = set()
    next_block = 1

    while len(block_members) < num_blocks:
        candidates = [
            b
            for b, members in block_members.items()
            if b not in unsplittable and len(members) >= 2 * min_block_modules
        ]
        if not candidates:
            raise PartitionError(
                f"only {len(block_members)} blocks are splittable; "
                f"requested {num_blocks}"
            )
        target = max(candidates, key=lambda b: len(block_members[b]))
        members = block_members[target]
        sub, module_map, _ = induced_subhypergraph(h, members)
        try:
            result = bipartitioner(sub)
        except PartitionError:
            unsplittable.add(target)
            continue
        u_members = []
        w_members = []
        for sub_index, module in enumerate(module_map):
            if result.partition.side(sub_index) == 0:
                u_members.append(module)
            else:
                w_members.append(module)
        if not u_members or not w_members:
            unsplittable.add(target)
            continue
        block_members[target] = u_members
        block_members[next_block] = w_members
        for module in w_members:
            block_of[module] = next_block
        next_block += 1

    # Renumber blocks densely 0..k-1 in ascending first-module order.
    remap = {
        old: new
        for new, old in enumerate(sorted(block_members))
    }
    block_of = [remap[b] for b in block_of]
    elapsed = time.perf_counter() - start
    return MultiwayResult(
        hypergraph=h,
        block_of=block_of,
        num_blocks=len(block_members),
        elapsed_seconds=elapsed,
        details={"bipartitioner": getattr(bipartitioner, "__name__", "custom")},
    )
