"""The canonical Fiduccia–Mattheyses bucket-list structure.

FM's linear-time-per-pass claim rests on a specific data structure: an
array of doubly-linked lists indexed by gain (bounded by ±p_max, the
maximum cell degree), a max-gain pointer that only moves down by
scanning and up by O(1) on insert, and O(1) unlink/relink per gain
update.  :class:`LinkedGainBuckets` implements it faithfully.

The default engine uses the simpler dict-of-sets
(:class:`repro.partitioning.fm.GainBuckets`) — equivalent behaviour,
friendlier code.  This class exists (a) as the faithful reference for
the paper-era complexity argument and (b) as a drop-in alternative:
it implements the same ``insert / remove / update / iter_best_first``
interface, and the test suite drives both through identical traces.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import PartitionError
from ..obs import incr

__all__ = ["LinkedGainBuckets"]


class _Node:
    __slots__ = ("cell", "prev", "next")

    def __init__(self, cell: int):
        self.cell = cell
        self.prev: Optional["_Node"] = None
        self.next: Optional["_Node"] = None


class LinkedGainBuckets:
    """Gain buckets as a doubly-linked-list array with a max pointer.

    ``max_gain`` bounds |gain|; inserts outside the bound grow the
    array (real netlists fix p_max up front; growing keeps the class
    general).  Within a bucket, cells pop in LIFO order — the classic
    implementation's behaviour.
    """

    def __init__(self, max_gain: int = 16):
        if max_gain < 1:
            raise PartitionError(f"max_gain must be >= 1, got {max_gain}")
        self._bound = max_gain
        self._heads: List[Optional[_Node]] = [None] * (2 * max_gain + 1)
        self._nodes: Dict[int, _Node] = {}
        self._gains: Dict[int, int] = {}
        self._max_index: Optional[int] = None
        self._count = 0

    # ------------------------------------------------------------------
    def _index(self, gain: int) -> int:
        if abs(gain) > self._bound:
            self._grow(abs(gain))
        return gain + self._bound

    def _grow(self, needed: int) -> None:
        # A grow means the preset p_max bound was too small — worth
        # counting, since each one is an O(bound) reallocation.
        incr("fm.bucket_grows")
        new_bound = max(needed, 2 * self._bound)
        shift = new_bound - self._bound
        self._heads = (
            [None] * shift + self._heads + [None] * shift
        )
        if self._max_index is not None:
            self._max_index += shift
        self._bound = new_bound

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    @classmethod
    def from_gains(cls, gains, max_gain: Optional[int] = None
                   ) -> "LinkedGainBuckets":
        """Bulk-build from a dense gain vector (cell ``i`` ↦ ``gains[i]``).

        Exactly equivalent to inserting cells ``0..n-1`` in ascending
        order — same LIFO bucket order, same ``iter_best_first``
        sequence — but the bound is preset from the data, so the build
        never triggers an O(bound) ``fm.bucket_grows`` reallocation.
        This is the natural entry point for gain vectors computed in
        bulk by the CSR core's vectorised FM initialisation.
        """
        gain_list = [int(g) for g in gains]
        if max_gain is None:
            max_gain = max((abs(g) for g in gain_list), default=0)
        buckets = cls(max_gain=max(int(max_gain), 1))
        for cell, gain in enumerate(gain_list):
            buckets.insert(cell, gain)
        return buckets

    def insert(self, cell: int, gain: int) -> None:
        if cell in self._nodes:
            raise PartitionError(f"cell {cell} already bucketed")
        index = self._index(gain)
        node = _Node(cell)
        head = self._heads[index]
        node.next = head
        if head is not None:
            head.prev = node
        self._heads[index] = node
        self._nodes[cell] = node
        self._gains[cell] = gain
        self._count += 1
        if self._max_index is None or index > self._max_index:
            self._max_index = index

    def remove(self, cell: int, gain: int) -> None:
        node = self._nodes.get(cell)
        if node is None or self._gains[cell] != gain:
            raise PartitionError(
                f"cell {cell} not in gain bucket {gain}"
            )
        index = self._index(gain)
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._heads[index] = node.next
        if node.next is not None:
            node.next.prev = node.prev
        del self._nodes[cell]
        del self._gains[cell]
        self._count -= 1
        # Let the max pointer drift down lazily.
        while (
            self._max_index is not None
            and self._max_index >= 0
            and self._heads[self._max_index] is None
        ):
            self._max_index -= 1
        if self._max_index is not None and self._max_index < 0:
            self._max_index = None

    def update(self, cell: int, old_gain: int, delta: int) -> int:
        """Relink a cell into its new bucket; returns the new gain."""
        if delta == 0:
            return old_gain
        self.remove(cell, old_gain)
        new_gain = old_gain + delta
        self.insert(cell, new_gain)
        return new_gain

    def iter_best_first(self):
        """Yield ``(gain, cell)`` best-gain-first (LIFO within bucket).

        Snapshot semantics like the dict implementation: mutations
        during iteration do not disturb already-yielded buckets.
        """
        if self._max_index is None:
            return
        for index in range(self._max_index, -1, -1):
            node = self._heads[index]
            cells = []
            while node is not None:
                cells.append(node.cell)
                node = node.next
            gain = index - self._bound
            for cell in cells:
                yield gain, cell
