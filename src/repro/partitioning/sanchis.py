"""Sanchis-style multiway FM refinement.

Sanchis (paper reference [26]) generalised Fiduccia–Mattheyses to
multiway partitions: moves are (cell, target-block) pairs selected by
gain, cells lock after moving, and the best prefix of the move sequence
is kept.  This is the hill-climbing counterpart to the greedy
:func:`repro.partitioning.kway.net_gain_refine` — a full pass can travel
through worsening states and revert, escaping the local minima the
greedy pass stops at.

The gain of moving a cell to block *t* is the reduction in *spanning
nets* (nets touching more than one block — the multiplexed-signal count
of the paper's §1 applications).  Gains are maintained incrementally
from per-net block-population counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import PartitionError
from ..hypergraph import Hypergraph

__all__ = ["KWayFMConfig", "kway_fm_refine", "kway_fm_pass"]


@dataclass(frozen=True)
class KWayFMConfig:
    """Options for :func:`kway_fm_refine`.

    ``min_block`` blocks moves that would shrink a block below it;
    ``max_passes`` bounds the pass loop (stops early when a pass keeps
    no moves).
    """

    max_passes: int = 6
    min_block: int = 1


class _KWayState:
    """Incremental spanning-net bookkeeping for a k-way partition."""

    def __init__(self, h: Hypergraph, block_of: Sequence[int], k: int):
        self.h = h
        self.k = k
        self.block_of = list(block_of)
        self.counts: List[Dict[int, int]] = []
        self.spanning = 0
        for _, pins in h.iter_nets():
            count: Dict[int, int] = {}
            for p in pins:
                b = self.block_of[p]
                count[b] = count.get(b, 0) + 1
            self.counts.append(count)
            if len(count) > 1:
                self.spanning += 1
        self.sizes = [0] * k
        for b in self.block_of:
            self.sizes[b] += 1

    def gain(self, cell: int, target: int) -> int:
        """Spanning-net reduction if ``cell`` moved to ``target``."""
        source = self.block_of[cell]
        if target == source:
            return 0
        gain = 0
        for net in self.h.nets_of(cell):
            count = self.counts[net]
            if self.h.net_size(net) < 2:
                continue
            blocks = len(count)
            # After the move: source population -1, target +1.
            after = blocks
            if count[source] == 1:
                after -= 1
            if target not in count:
                after += 1
            gain += int(blocks > 1) - int(after > 1)
        return gain

    def move(self, cell: int, target: int) -> None:
        source = self.block_of[cell]
        for net in self.h.nets_of(cell):
            count = self.counts[net]
            if self.h.net_size(net) < 2:
                # keep populations consistent even for degenerate nets
                pass
            was_spanning = len(count) > 1
            count[source] -= 1
            if count[source] == 0:
                del count[source]
            count[target] = count.get(target, 0) + 1
            now_spanning = len(count) > 1
            if self.h.net_size(net) >= 2:
                self.spanning += int(now_spanning) - int(was_spanning)
        self.block_of[cell] = target
        self.sizes[source] -= 1
        self.sizes[target] += 1

    def neighbour_blocks(self, cell: int) -> Set[int]:
        """Blocks adjacent to ``cell`` through its nets."""
        out: Set[int] = set()
        for net in self.h.nets_of(cell):
            out.update(self.counts[net])
        out.discard(self.block_of[cell])
        return out


def kway_fm_pass(
    state: _KWayState, min_block: int
) -> Tuple[int, int]:
    """One locked pass of multiway FM; returns (moves_kept, spanning).

    Every cell moves at most once.  Candidate moves target neighbour
    blocks only (moves to unconnected blocks can never reduce the
    spanning count).  The pass applies best-gain moves greedily (ties:
    lowest cell index, then block), tracking the prefix with the fewest
    spanning nets, then reverts the rest.
    """
    h = state.h
    n = h.num_modules
    locked = [False] * n

    move_log: List[Tuple[int, int, int]] = []  # (cell, source, target)
    best_prefix = 0
    best_spanning = state.spanning

    while True:
        best: Optional[Tuple[int, int, int]] = None  # (-gain, cell, tgt)
        for cell in range(n):
            if locked[cell]:
                continue
            if state.sizes[state.block_of[cell]] <= min_block:
                continue
            for target in sorted(state.neighbour_blocks(cell)):
                gain = state.gain(cell, target)
                key = (-gain, cell, target)
                if best is None or key < best:
                    best = key
        if best is None:
            break
        _, cell, target = best
        source = state.block_of[cell]
        state.move(cell, target)
        locked[cell] = True
        move_log.append((cell, source, target))
        if state.spanning < best_spanning:
            best_spanning = state.spanning
            best_prefix = len(move_log)
        # A full pass over thousands of cells is wasteful once gains
        # are deeply negative; stop when the pass has drifted far past
        # the best state.
        if state.spanning > best_spanning + 50 and (
            len(move_log) > best_prefix + 2 * state.k + 10
        ):
            break

    for cell, source, _ in reversed(move_log[best_prefix:]):
        state.move(cell, source)
    return best_prefix, state.spanning


def kway_fm_refine(
    h: Hypergraph,
    block_of: List[int],
    k: int,
    config: KWayFMConfig = KWayFMConfig(),
) -> int:
    """Refine a k-way partition in place; returns total moves kept.

    Raises :class:`PartitionError` on malformed inputs (wrong label
    count or out-of-range labels).
    """
    if len(block_of) != h.num_modules:
        raise PartitionError(
            f"{len(block_of)} labels for {h.num_modules} modules"
        )
    if any(not 0 <= b < k for b in block_of):
        raise PartitionError(f"block labels must lie in 0..{k - 1}")
    state = _KWayState(h, block_of, k)
    total = 0
    for _ in range(config.max_passes):
        kept, _ = kway_fm_pass(state, config.min_block)
        total += kept
        if kept == 0:
            break
    block_of[:] = state.block_of
    return total
