"""IG-Match: spectral net partitioning with matching-based completion.

The paper's main algorithm (Section 3, Figures 5–7):

1. Build the intersection graph ``G'`` of the netlist hypergraph and sort
   its second Laplacian eigenvector, giving a linear ordering of the nets.
2. Sweep a split point along the ordering.  At each split, the
   intersection-graph edges crossing the split form a bipartite graph
   ``B``; a maximum matching of ``B`` (maintained incrementally) and the
   König decomposition select a maximum independent set of *winner* nets
   (Phase I), which pin modules to sides.  The leftover modules are tried
   wholesale on each side and the better ratio cut kept (Phase II).
3. Return the best completed module partition over all splits.

Guarantees surfaced as checkable invariants:

* the completed partition never cuts more nets than the size of the
  maximum matching of ``B`` (Theorem 5) — optionally asserted per split;
* the output is deterministic for a fixed eigensolver seed, one of the
  paper's headline practical advantages.

The recursive extension sketched in Section 3 (re-partitioning the
unassigned core instead of assigning it wholesale) is available via
``recursive_depth``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import PartitionError
from ..hypergraph import Hypergraph
from ..intersection import intersection_graph
from ..matching import IncrementalMatching
from ..matching.incremental import VertexClass
from ..obs import add_timing, emit, incr, is_enabled, span
from ..parallel import ParallelConfig, pstarmap
from ..spectral import spectral_ordering
from .metrics import ratio_cut_cost
from .partition import Partition, PartitionResult

__all__ = [
    "IGMatchConfig",
    "SplitEvaluation",
    "SweepWarmStart",
    "ig_match",
    "ig_match_sweep",
]

_L_SIDE = 0
_R_SIDE = 1
_UNASSIGNED = 2


@dataclass(frozen=True)
class IGMatchConfig:
    """Tuning knobs for :func:`ig_match`.

    ``weighting`` selects the intersection-graph edge weighting
    (``"paper"`` by default).  ``backend``/``seed`` control the
    eigensolver.  ``split_stride`` evaluates every k-th split (1 = all
    splits, the paper's algorithm; larger values trade quality for
    speed on very large netlists).  ``check_invariants`` asserts
    Theorem 5's loser bound at every evaluated split.
    ``recursive_depth`` > 0 enables the recursive completion extension.
    """

    weighting: str = "paper"
    backend: str = "scipy"
    seed: int = 0
    split_stride: int = 1
    check_invariants: bool = False
    recursive_depth: int = 0
    min_part_modules: int = 1
    #: Sweep orderings from this many Laplacian eigenvectors (2nd,
    #: 3rd, ...) and keep the best completion — the multi-eigenvector
    #: variant explored in the Hagen–Kahng follow-up work.  Falls back
    #: to the Fiedler ordering alone when the intersection graph cannot
    #: supply more eigenvectors (disconnected or too small).
    candidate_orderings: int = 1
    #: Optimise the *weighted* ratio cut: the numerator becomes the sum
    #: of cut-net weights (criticality), so heavy nets are kept uncut
    #: preferentially — the "critical signal nets" emphasis of the
    #: paper's introduction.  Theorem 5's loser-count invariant applies
    #: to net *counts*, so ``check_invariants`` is unavailable in this
    #: mode.  No-op on unweighted netlists.
    use_net_weights: bool = False
    #: Fan the candidate-ordering sweeps out over a worker pool
    #: (``None`` resolves from the ``REPRO_WORKERS`` /
    #: ``REPRO_BACKEND`` environment).  IG-Match is deterministic, so
    #: this only changes wall-clock time, never the result.
    parallel: Optional[ParallelConfig] = None


@dataclass(frozen=True)
class SplitEvaluation:
    """Outcome of completing the module partition at one split rank.

    ``nets_cut`` is a count normally, or the summed cut-net weight when
    the sweep runs with ``use_net_weights``.
    """

    rank: int
    matching_size: int
    nets_cut: float
    ratio_cut: float
    assign_core_to_l: bool


@dataclass(frozen=True)
class SweepWarmStart:
    """Warm-start directive for :func:`ig_match_sweep`.

    Restricts the sweep to split ranks ``lo..hi`` (inclusive, both in
    ``1..num_nets-1``).  The matcher reaches the rank ``lo`` state via
    :meth:`~repro.matching.IncrementalMatching.jump_start` — flipping
    the first ``lo - 1`` ordered nets in one shot, installing
    ``matching_seed`` pairs that are still valid crossing edges, and
    repairing to maximum with a single augmentation pass — instead of
    replaying ``lo - 1`` incremental moves.  König classes depend only
    on *which* matching is maximum, never on how it was found, so every
    evaluation inside the window is identical to the cold sweep's
    evaluation at the same rank.
    """

    lo: int
    hi: int
    matching_seed: Tuple[Tuple[int, int], ...] = ()


class _SweepArrays:
    """Precomputed flat pin arrays for the vectorised Phase II.

    ``pin_modules[i]`` / ``pin_nets[i]`` give the module and net of the
    i-th pin; ``net_valid`` masks nets with >= 2 pins (the only ones
    that can be cut).  Built once per sweep, O(pins).
    """

    def __init__(self, h: Hypergraph, use_net_weights: bool = False):
        import numpy as np

        modules = []
        nets = []
        for net, pins in h.iter_nets():
            for p in pins:
                modules.append(p)
                nets.append(net)
        self.pin_modules = np.asarray(modules, dtype=np.int64)
        self.pin_nets = np.asarray(nets, dtype=np.int64)
        self.net_valid = np.asarray(
            [h.net_size(j) >= 2 for j in range(h.num_nets)]
        )
        if use_net_weights and h.has_net_weights:
            self.net_weights = np.asarray(h.net_weights, dtype=float)
        else:
            self.net_weights = None
        self.num_modules = h.num_modules
        self.num_nets = h.num_nets


def _evaluate_split_vectorised(
    arrays: _SweepArrays,
    codes: List[int],
    rank: int,
    matching_size: int,
) -> Tuple[Optional[SplitEvaluation], Optional[List[int]]]:
    """Vectorised Phase II, equivalent to :func:`_evaluate_split`.

    (The pure-Python version remains the readable reference; the test
    suite asserts both produce identical evaluations.)
    """
    import numpy as np

    codes_arr = np.asarray(codes, dtype=np.int8)
    net_class = codes_arr[arrays.pin_nets]
    assign = np.full(arrays.num_modules, _UNASSIGNED, dtype=np.int8)
    assign[arrays.pin_modules[net_class == VertexClass.EVEN_L]] = _L_SIDE
    assign[arrays.pin_modules[net_class == VertexClass.EVEN_R]] = _R_SIDE

    num_l = int(np.count_nonzero(assign == _L_SIDE))
    num_r = int(np.count_nonzero(assign == _R_SIDE))
    num_n = arrays.num_modules - num_l - num_r

    pin_sides = assign[arrays.pin_modules]
    m = arrays.num_nets
    in_l = np.bincount(
        arrays.pin_nets[pin_sides == _L_SIDE], minlength=m
    )
    in_r = np.bincount(
        arrays.pin_nets[pin_sides == _R_SIDE], minlength=m
    )
    in_n = np.bincount(
        arrays.pin_nets[pin_sides == _UNASSIGNED], minlength=m
    )

    valid = arrays.net_valid
    uncut_core_l = (in_r == 0) | ((in_l == 0) & (in_n == 0))
    uncut_core_r = (in_l == 0) | ((in_r == 0) & (in_n == 0))
    if arrays.net_weights is None:
        cut_if_core_l = int(np.count_nonzero(valid & ~uncut_core_l))
        cut_if_core_r = int(np.count_nonzero(valid & ~uncut_core_r))
    else:
        # Criticality mode: the numerator is the summed weight of cut
        # nets (IGMatchConfig.use_net_weights).
        cut_if_core_l = float(
            arrays.net_weights[valid & ~uncut_core_l].sum()
        )
        cut_if_core_r = float(
            arrays.net_weights[valid & ~uncut_core_r].sum()
        )

    ratio_core_l = ratio_cut_cost(cut_if_core_l, num_l + num_n, num_r)
    ratio_core_r = ratio_cut_cost(cut_if_core_r, num_l, num_r + num_n)
    if ratio_core_l == float("inf") and ratio_core_r == float("inf"):
        return None, None

    core_to_l = ratio_core_l <= ratio_core_r
    evaluation = SplitEvaluation(
        rank=rank,
        matching_size=matching_size,
        nets_cut=cut_if_core_l if core_to_l else cut_if_core_r,
        ratio_cut=ratio_core_l if core_to_l else ratio_core_r,
        assign_core_to_l=core_to_l,
    )
    # Converted lazily by the caller; only the best split's assignment
    # is ever materialised.
    return evaluation, assign.tolist()


def _evaluate_split(
    h: Hypergraph,
    codes: List[int],
    rank: int,
    matching_size: int,
) -> Tuple[Optional[SplitEvaluation], Optional[List[int]]]:
    """Phase II of the main loop: complete the module partition.

    ``codes[net]`` is the König class of each net (R = nets already swept,
    i.e. the first ``rank`` of the ordering).  Winner nets pin their
    modules; unassigned modules are tried on the L side and on the R side
    and the better ratio cut wins.

    Returns the evaluation and the module assignment array (values
    ``_L_SIDE``/``_R_SIDE``/``_UNASSIGNED``) for the winning option, or
    ``(None, None)`` when both completions are degenerate (one side
    empty).
    """
    n = h.num_modules
    assign = [_UNASSIGNED] * n
    for net in range(h.num_nets):
        code = codes[net]
        if code == VertexClass.EVEN_L:
            for pin in h.pins(net):
                assign[pin] = _L_SIDE
        elif code == VertexClass.EVEN_R:
            for pin in h.pins(net):
                assign[pin] = _R_SIDE

    num_l = assign.count(_L_SIDE)
    num_r = assign.count(_R_SIDE)
    num_n = n - num_l - num_r

    # One pass over the pins classifies each net under both completions.
    cut_if_core_l = 0  # unassigned modules join the L side
    cut_if_core_r = 0
    for net in range(h.num_nets):
        pins = h.pins(net)
        if len(pins) < 2:
            continue
        in_l = in_r = in_n = 0
        for pin in pins:
            side = assign[pin]
            if side == _L_SIDE:
                in_l += 1
            elif side == _R_SIDE:
                in_r += 1
            else:
                in_n += 1
        # Core → L: uncut iff all pins land in L (in_r == 0) or all in R.
        if not (in_r == 0 or (in_l == 0 and in_n == 0)):
            cut_if_core_l += 1
        if not (in_l == 0 or (in_r == 0 and in_n == 0)):
            cut_if_core_r += 1

    ratio_core_l = ratio_cut_cost(cut_if_core_l, num_l + num_n, num_r)
    ratio_core_r = ratio_cut_cost(cut_if_core_r, num_l, num_r + num_n)
    if ratio_core_l == float("inf") and ratio_core_r == float("inf"):
        return None, None

    core_to_l = ratio_core_l <= ratio_core_r
    evaluation = SplitEvaluation(
        rank=rank,
        matching_size=matching_size,
        nets_cut=cut_if_core_l if core_to_l else cut_if_core_r,
        ratio_cut=ratio_core_l if core_to_l else ratio_core_r,
        assign_core_to_l=core_to_l,
    )
    return evaluation, assign


def _materialise(
    h: Hypergraph, assign: Sequence[int], core_to_l: bool
) -> List[int]:
    """Resolve unassigned modules to the chosen side; return 0/1 sides.

    Side 0 (U) is the L side of the net split, side 1 (W) the R side.
    """
    resolved = _L_SIDE if core_to_l else _R_SIDE
    return [
        (resolved if a == _UNASSIGNED else a) for a in assign
    ]


def ig_match_sweep(
    h: Hypergraph,
    config: IGMatchConfig = IGMatchConfig(),
    order: Optional[Sequence[int]] = None,
    graph=None,
    warm: Optional[SweepWarmStart] = None,
    capture: Optional[dict] = None,
) -> Tuple[List[SplitEvaluation], Optional[Partition]]:
    """Run the full IG-Match sweep; return all evaluations and the best
    completed partition.

    ``order`` overrides the spectral net ordering (used by ablations that
    feed the same ordering to several completion strategies); ``graph``
    supplies a prebuilt intersection graph to avoid rebuilding it across
    multiple sweeps.  ``warm`` restricts the sweep to a rank window,
    jump-starting the matcher (see :class:`SweepWarmStart`); ``capture``,
    when a dict, receives the best split's rank and matching pairs —
    observation only, the sweep outcome is unchanged.
    """
    if h.num_modules < 2:
        raise PartitionError("IG-Match needs at least 2 modules")
    if h.num_nets < 2:
        raise PartitionError("IG-Match needs at least 2 nets to split")
    if config.split_stride < 1:
        raise PartitionError(
            f"split_stride must be >= 1, got {config.split_stride}"
        )

    if graph is None:
        graph = intersection_graph(h, config.weighting)
    if order is None:
        order = spectral_ordering(
            graph, backend=config.backend, seed=config.seed
        )
    elif sorted(order) != list(range(h.num_nets)):
        raise PartitionError("order must be a permutation of net indices")

    matcher = IncrementalMatching(graph)
    evaluations: List[SplitEvaluation] = []
    best_eval: Optional[SplitEvaluation] = None
    best_assign: Optional[List[int]] = None

    num_nets = h.num_nets
    start_index = 0
    stop_index = num_nets - 1
    if warm is not None:
        if not 1 <= warm.lo <= warm.hi <= num_nets - 1:
            raise PartitionError(
                f"warm window [{warm.lo}, {warm.hi}] outside valid "
                f"split ranks 1..{num_nets - 1}"
            )
        # Reach the rank ``lo - 1`` state in one shot; the loop below
        # then performs the rank ``lo`` move exactly like a cold sweep.
        matcher.jump_start(
            [order[i] for i in range(warm.lo - 1)], warm.matching_seed
        )
        start_index = warm.lo - 1
        stop_index = warm.hi
    use_weights = config.use_net_weights and h.has_net_weights
    if use_weights and config.check_invariants:
        raise PartitionError(
            "check_invariants (Theorem 5, a net-count bound) is not "
            "available with use_net_weights"
        )
    # The per-split loop is the pipeline's hot path, so it is profiled
    # with local perf_counter accumulators (reported once after the
    # loop) rather than a span per split; ``profiling`` is a local
    # bool, so the disabled cost is one branch per split.
    profiling = is_enabled()
    match_seconds = 0.0
    complete_seconds = 0.0
    t_mark = 0.0
    with span("igmatch.sweep", nets=num_nets) as sweep_span:
        # The vectorised Phase II pays off once circuits are
        # non-trivial; the pure-Python version stays as the readable
        # reference (and the tests assert they agree).  The weighted
        # objective is only implemented in the vectorised path.
        arrays = (
            _SweepArrays(h, use_weights)
            if (num_nets >= 64 or use_weights)
            else None
        )
        for index in range(start_index, stop_index):
            net = order[index]
            if profiling:
                t_mark = time.perf_counter()
            # Nets swept so far (including this one) form the R side.
            matcher.move_to_right(net)
            rank = index + 1
            if rank % config.split_stride and rank != num_nets - 1:
                if profiling:
                    match_seconds += time.perf_counter() - t_mark
                continue
            codes = matcher.classify()
            if profiling:
                now = time.perf_counter()
                match_seconds += now - t_mark
                t_mark = now
            if arrays is not None:
                evaluation, assign = _evaluate_split_vectorised(
                    arrays, codes, rank, matcher.matching_size
                )
            else:
                evaluation, assign = _evaluate_split(
                    h, codes, rank, matcher.matching_size
                )
            if profiling:
                complete_seconds += time.perf_counter() - t_mark
            if evaluation is None:
                continue
            if config.check_invariants and (
                evaluation.nets_cut > evaluation.matching_size
            ):
                raise PartitionError(
                    f"Theorem 5 violated at rank {rank}: "
                    f"{evaluation.nets_cut} nets cut > matching size "
                    f"{evaluation.matching_size}"
                )
            evaluations.append(evaluation)
            if best_eval is None or (
                (evaluation.ratio_cut, evaluation.rank)
                < (best_eval.ratio_cut, best_eval.rank)
            ):
                best_eval = evaluation
                best_assign = assign
                if capture is not None:
                    md = matcher.matching_dict()
                    capture["best_rank"] = rank
                    capture["matching"] = tuple(
                        sorted(
                            (v, p) for v, p in md.items() if v < p
                        )
                    )

        if profiling:
            splits = len(evaluations)
            sweep_span.set(
                splits=splits,
                augmentations=matcher.augmentations,
                matching_size=matcher.matching_size,
            )
            add_timing(
                "igmatch.matching",
                match_seconds,
                count=splits,
                augmentations=matcher.augmentations,
            )
            add_timing("igmatch.completion", complete_seconds, count=splits)
            incr("igmatch.sweeps")
            incr("igmatch.splits_evaluated", splits)
            incr("matching.augmentations", matcher.augmentations)
            incr(
                "matching.augmentation_attempts",
                matcher.augmentation_attempts,
            )
            incr("matching.search_visits", matcher.search_visits)
            emit(
                "igmatch.sweep",
                nets=num_nets,
                splits=splits,
                augmentations=matcher.augmentations,
                final_matching_size=matcher.matching_size,
                best_rank=None if best_eval is None else best_eval.rank,
            )
            if evaluations:
                # The ratio-cut-vs-split-index curve behind Theorem 6's
                # sweep, plus the matching-size (Theorem 5 bound) at
                # each evaluated split — the IG-Match analogue of the
                # EIG1 splits.curve event.
                emit(
                    "igmatch.curve",
                    nets=num_nets,
                    ranks=[e.rank for e in evaluations],
                    ratio_cuts=[e.ratio_cut for e in evaluations],
                    nets_cut=[e.nets_cut for e in evaluations],
                    matching_sizes=[
                        e.matching_size for e in evaluations
                    ],
                    best_rank=(
                        None if best_eval is None else best_eval.rank
                    ),
                )

    if best_eval is None or best_assign is None:
        return evaluations, None
    with span("igmatch.refinement", recursive_depth=config.recursive_depth):
        sides = _materialise(h, best_assign, best_eval.assign_core_to_l)
        partition = Partition(h, sides)
        if config.recursive_depth > 0:
            partition = _recursive_refine(
                h, best_assign, partition, config
            )
    return evaluations, partition


def _recursive_refine(
    h: Hypergraph,
    assign: Sequence[int],
    baseline: Partition,
    config: IGMatchConfig,
) -> Partition:
    """The recursive extension: instead of sending every unassigned
    module to one side, bipartition the unassigned set with a recursive
    IG-Match call and try both orientations of that sub-partition.

    Keeps the better of the baseline and the recursive completion, so it
    never degrades the result.
    """
    unassigned = [v for v, a in enumerate(assign) if a == _UNASSIGNED]
    if len(unassigned) < 4:
        return baseline

    from ..hypergraph import induced_subhypergraph

    sub, module_map, _ = induced_subhypergraph(h, unassigned)
    if sub.num_nets < 2 or sub.num_modules < 2:
        return baseline
    sub_config = IGMatchConfig(
        weighting=config.weighting,
        backend=config.backend,
        seed=config.seed,
        split_stride=config.split_stride,
        recursive_depth=config.recursive_depth - 1,
    )
    try:
        _, sub_partition = ig_match_sweep(sub, sub_config)
    except PartitionError:
        return baseline
    if sub_partition is None:
        return baseline

    best = baseline
    for orientation in (0, 1):
        sides = list(assign)
        for sub_index, module in enumerate(module_map):
            sub_side = sub_partition.side(sub_index)
            if orientation:
                sub_side = 1 - sub_side
            sides[module] = sub_side
        try:
            candidate = Partition(h, sides)
        except PartitionError:
            continue
        if candidate.ratio_cut < best.ratio_cut:
            best = candidate
    return best


def _candidate_orders(
    h: Hypergraph, graph, config: IGMatchConfig
) -> List[List[int]]:
    """Net orderings from the first ``candidate_orderings``
    eigenvectors, falling back to the single component-aware ordering
    when the graph cannot supply them."""
    from ..spectral import nontrivial_eigenvectors, ordering_from_values
    from ..errors import SpectralError

    count = max(1, config.candidate_orderings)
    if count > 1:
        try:
            _, vectors = nontrivial_eigenvectors(
                graph, count, backend=config.backend, seed=config.seed
            )
            return [
                ordering_from_values(vectors[:, i])
                for i in range(vectors.shape[1])
            ]
        except SpectralError:
            pass
    return [
        spectral_ordering(graph, backend=config.backend, seed=config.seed)
    ]


def _sweep_task(
    h: Hypergraph,
    config: IGMatchConfig,
    order: Sequence[int],
    graph,
    capture: bool = False,
) -> Tuple[
    int, Optional[SplitEvaluation], Optional[List[int]], Optional[dict]
]:
    """Run one candidate ordering's sweep (picklable worker task).

    Returns ``(splits_evaluated, best_evaluation, sides, captured)``
    with the partition flattened to its side list so process workers
    never ship a full :class:`Partition` back.  ``captured`` (the best
    split's matching snapshot) travels through the return tuple so the
    process backend works — mutated closures would not survive pickling.
    """
    captured: Optional[dict] = {} if capture else None
    evaluations, partition = ig_match_sweep(
        h, config, order=order, graph=graph, capture=captured
    )
    if partition is None:
        return len(evaluations), None, None, None
    sweep_best = min(evaluations, key=lambda e: (e.ratio_cut, e.rank))
    return len(evaluations), sweep_best, list(partition.sides), captured


def ig_match(
    h: Hypergraph,
    config: IGMatchConfig = IGMatchConfig(),
    order: Optional[Sequence[int]] = None,
    capture: Optional[dict] = None,
) -> PartitionResult:
    """Partition ``h`` with IG-Match; the paper's primary algorithm.

    Returns a :class:`PartitionResult` whose ``details`` include the best
    split rank, the matching-size bound at that split (Theorem 5), and
    the number of splits evaluated.  With
    ``config.candidate_orderings > 1`` the sweep is repeated for
    orderings from additional Laplacian eigenvectors and the best
    completion kept (still fully deterministic).  When ``capture`` is a
    dict it receives the winning sweep's best rank and matching pairs
    (the warm-start seed the ECO serving path stores per session);
    passing it never changes the result.
    """
    start = time.perf_counter()
    if h.num_modules < 2:
        raise PartitionError("IG-Match needs at least 2 modules")
    if h.num_nets < 2:
        raise PartitionError("IG-Match needs at least 2 nets to split")

    with span(
        "igmatch", modules=h.num_modules, nets=h.num_nets
    ) as ig_span:
        graph = intersection_graph(h, config.weighting)
        if order is not None:
            orders: List[Sequence[int]] = [order]
        else:
            with span(
                "igmatch.ordering", candidates=config.candidate_orderings
            ):
                orders = _candidate_orders(h, graph, config)

        # Candidate orderings sweep independently over the shared
        # intersection graph — the IG-Match fan-out site.  Reduction is
        # in ordering index order, so the first ordering wins ties.
        sweeps = pstarmap(
            _sweep_task,
            [
                (h, config, list(candidate), graph, capture is not None)
                for candidate in orders
            ],
            config.parallel,
            label="igmatch.orderings",
        )
        best_partition: Optional[Partition] = None
        best_eval: Optional[SplitEvaluation] = None
        best_index = 0
        best_captured: Optional[dict] = None
        total_evaluations = 0
        for index, (splits, sweep_best, sides, captured) in enumerate(
            sweeps
        ):
            total_evaluations += splits
            if sides is None or sweep_best is None:
                continue
            # Compare orderings by the sweep objective (which is the
            # weighted ratio cut under use_net_weights).
            if best_eval is None or sweep_best.ratio_cut < best_eval.ratio_cut:
                best_partition = Partition(h, sides)
                best_eval = sweep_best
                best_index = index
                best_captured = captured
        if best_eval is not None:
            ig_span.set(
                best_rank=best_eval.rank,
                splits_evaluated=total_evaluations,
                orderings=len(orders),
            )
    elapsed = time.perf_counter() - start
    if best_partition is None or best_eval is None:
        raise PartitionError(
            "IG-Match found no feasible completion at any split"
        )
    if capture is not None and best_captured:
        capture.update(best_captured)
        capture["best_ordering"] = best_index
    return PartitionResult(
        algorithm="IG-Match",
        partition=best_partition,
        elapsed_seconds=elapsed,
        details={
            "best_rank": best_eval.rank,
            "matching_bound": best_eval.matching_size,
            "splits_evaluated": total_evaluations,
            "weighting": config.weighting,
            "backend": config.backend,
            "recursive_depth": config.recursive_depth,
            "orderings_tried": len(orders),
            "best_ordering": best_index,
            **(
                {
                    "weighted_objective": True,
                    "weighted_ratio_cut": best_eval.ratio_cut,
                    "weighted_cut": best_eval.nets_cut,
                }
                if config.use_net_weights and h.has_net_weights
                else {}
            ),
        },
    )
