"""Partition quality metrics.

The formulations of Section 1.1 of the paper:

* **net cut** — the number of nets with pins on both sides (the hypergraph
  cut; for 2-pin nets this equals the graph edge cut);
* **ratio cut** — Wei–Cheng's ``e(U, W) / (|U| · |W|)``;
* **balance / bisection width** helpers for the min-width-bisection
  baselines.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import PartitionError
from ..graph import Graph
from ..hypergraph import Hypergraph

__all__ = [
    "cut_net_indices",
    "net_cut_count",
    "ratio_cut_cost",
    "ratio_cut_of_sides",
    "weighted_net_cut",
    "graph_edge_cut",
    "balance_ratio",
    "is_bisection",
]


def _check_sides(num_modules: int, side_of: Sequence[int]) -> None:
    if len(side_of) != num_modules:
        raise PartitionError(
            f"side assignment has {len(side_of)} entries for "
            f"{num_modules} modules"
        )


def cut_net_indices(h: Hypergraph, side_of: Sequence[int]) -> List[int]:
    """Nets with at least one pin on each side."""
    _check_sides(h.num_modules, side_of)
    cut = []
    for net, pins in h.iter_nets():
        if not pins:
            continue
        first = side_of[pins[0]]
        if any(side_of[p] != first for p in pins[1:]):
            cut.append(net)
    return cut


def net_cut_count(h: Hypergraph, side_of: Sequence[int]) -> int:
    """``e(U, W)`` — the number of cut nets."""
    return len(cut_net_indices(h, side_of))


def ratio_cut_cost(nets_cut: int, u_size: int, w_size: int) -> float:
    """``e(U, W) / (|U| · |W|)``; infinity when a side is empty.

    An empty side means "no partition at all"; returning infinity lets
    sweep loops ignore such degenerate candidates uniformly.
    """
    if u_size <= 0 or w_size <= 0:
        return float("inf")
    return nets_cut / (u_size * w_size)


def ratio_cut_of_sides(h: Hypergraph, side_of: Sequence[int]) -> float:
    """Ratio cut of a full side assignment."""
    _check_sides(h.num_modules, side_of)
    u_size = sum(1 for s in side_of if s == 0)
    w_size = len(side_of) - u_size
    return ratio_cut_cost(net_cut_count(h, side_of), u_size, w_size)


def weighted_net_cut(h: Hypergraph, side_of: Sequence[int]) -> float:
    """Total *weight* of cut nets (Section 1.1's weighted-edge view).

    Equals :func:`net_cut_count` on unweighted netlists.
    """
    return sum(
        h.net_weight(net) for net in cut_net_indices(h, side_of)
    )


def graph_edge_cut(g: Graph, side_of: Sequence[int]) -> float:
    """Total weight of graph edges crossing the partition."""
    if len(side_of) != g.num_vertices:
        raise PartitionError(
            f"side assignment has {len(side_of)} entries for "
            f"{g.num_vertices} vertices"
        )
    return sum(
        w for u, v, w in g.edges() if side_of[u] != side_of[v]
    )


def balance_ratio(side_of: Sequence[int]) -> float:
    """``min(|U|, |W|) / n`` — 0.5 for a perfect bisection."""
    n = len(side_of)
    if n == 0:
        return 0.0
    u_size = sum(1 for s in side_of if s == 0)
    return min(u_size, n - u_size) / n


def is_bisection(side_of: Sequence[int]) -> bool:
    """True when the side sizes differ by at most one."""
    n = len(side_of)
    u_size = sum(1 for s in side_of if s == 0)
    return abs(2 * u_size - n) <= 1
