"""Human-readable partition reports.

:func:`partition_report` renders everything an engineer inspects after
a partitioning run: the headline metrics, the cut-net list with each
net's pin split, the boundary-module census, and the per-net-size cut
histogram (the Table 1 view of this particular partition).  Exposed on
the CLI as ``repro-partition ... --report``.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from .partition import Partition, PartitionResult

__all__ = ["partition_report"]


def _cut_net_lines(partition: Partition, limit: int) -> List[str]:
    h = partition.hypergraph
    lines = []
    for net in partition.cut_nets[:limit]:
        pins = h.pins(net)
        u_pins = sum(1 for p in pins if partition.side(p) == 0)
        lines.append(
            f"    {h.net_name(net):<16} {len(pins)} pins, "
            f"{u_pins} on U / {len(pins) - u_pins} on W"
        )
    hidden = partition.num_nets_cut - limit
    if hidden > 0:
        lines.append(f"    ... and {hidden} more")
    return lines


def _boundary_census(partition: Partition) -> Counter:
    """Modules incident to at least one cut net, counted per side."""
    h = partition.hypergraph
    cut = set(partition.cut_nets)
    census: Counter = Counter()
    for module in range(h.num_modules):
        if any(net in cut for net in h.nets_of(module)):
            census["U" if partition.side(module) == 0 else "W"] += 1
    return census


def _cut_histogram_lines(partition: Partition) -> List[str]:
    h = partition.hypergraph
    totals = Counter(h.net_sizes())
    cuts = Counter(h.net_size(net) for net in partition.cut_nets)
    lines = [f"    {'size':>4}  {'nets':>6}  {'cut':>5}  {'frac':>6}"]
    for size in sorted(totals):
        cut = cuts.get(size, 0)
        lines.append(
            f"    {size:>4}  {totals[size]:>6}  {cut:>5}  "
            f"{cut / totals[size]:>6.3f}"
        )
    return lines


def partition_report(
    result: PartitionResult, max_cut_nets: int = 20
) -> str:
    """Render a full text report for one partitioning result."""
    partition = result.partition
    h = partition.hypergraph
    census = _boundary_census(partition)

    lines = [
        f"partition report — {result.algorithm} on "
        f"{h.name or '(unnamed)'}",
        "=" * 64,
        f"modules:        {h.num_modules}  ({partition.u_size} U / "
        f"{partition.w_size} W)",
        f"areas:          {partition.area_string}",
        f"nets:           {h.num_nets}",
        f"nets cut:       {partition.num_nets_cut}",
        *(
            [f"cut weight:     {partition.weighted_nets_cut:g}"]
            if h.has_net_weights
            else []
        ),
        f"ratio cut:      {partition.ratio_cut:.4e}",
        f"wall time:      {result.elapsed_seconds:.2f}s",
    ]
    for key, value in sorted(result.details.items()):
        if isinstance(value, (int, float, str, bool)):
            lines.append(f"{key + ':':<16}{value}")

    lines.append("")
    lines.append(
        f"boundary modules: {census.get('U', 0)} on U, "
        f"{census.get('W', 0)} on W"
    )
    if partition.num_nets_cut:
        lines.append("")
        lines.append("cut nets:")
        lines.extend(_cut_net_lines(partition, max_cut_nets))
    lines.append("")
    lines.append("cut histogram by net size:")
    lines.extend(_cut_histogram_lines(partition))
    return "\n".join(lines)
