"""IG-Vote (EIG1-IG): the voting completion heuristic of Hagen–Kahng.

Appendix B of the paper.  Shares IG-Match's first stage — the sorted
second eigenvector of the intersection graph — but completes the module
partition by *voting*: each net exerts weight ``1/|s|`` on its modules,
and a module crosses the partition once at least half of its total
incident net weight has crossed.  The sweep is run forward (nets peel off
U into W) and backward, and the best ratio cut among the up-to-``2(m-1)``
generated partitions is returned.

IG-Match was shown to dominate this heuristic (Table 3); IG-Vote is
reproduced here as the paper's closest baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import PartitionError
from ..hypergraph import Hypergraph
from ..intersection import intersection_graph
from ..spectral import spectral_ordering
from .metrics import ratio_cut_cost
from .partition import Partition, PartitionResult

__all__ = ["IGVoteConfig", "ig_vote"]

_EPS = 1e-12


@dataclass(frozen=True)
class IGVoteConfig:
    """Eigensolver and weighting options (matching IG-Match's stage 1)."""

    weighting: str = "paper"
    backend: str = "scipy"
    seed: int = 0
    threshold: float = 0.5


def _vote_pass(
    h: Hypergraph,
    order: Sequence[int],
    threshold: float,
) -> Tuple[float, int, Optional[List[int]], int]:
    """One direction of the voting sweep.

    All modules start on side 0; nets are processed in ``order`` and vote
    their modules over to side 1.  Returns the best
    ``(ratio_cut, nets_cut, sides_snapshot, step)`` seen.
    """
    n = h.num_modules
    sizes = h.net_sizes()

    total_weight = [0.0] * n
    for net, pins in h.iter_nets():
        if not pins:
            continue
        share = 1.0 / sizes[net]
        for pin in pins:
            total_weight[pin] += share

    side = [0] * n
    moved_weight = [0.0] * n
    pins_moved = [0] * h.num_nets  # pins of each net on side 1
    nets_cut = 0
    moved_count = 0

    best_ratio = float("inf")
    best_cut = 0
    best_sides: Optional[List[int]] = None
    best_step = -1

    def move_module(module: int) -> None:
        nonlocal nets_cut, moved_count
        side[module] = 1
        moved_count += 1
        for incident in h.nets_of(module):
            count = pins_moved[incident]
            size = sizes[incident]
            was_cut = 0 < count < size
            count += 1
            pins_moved[incident] = count
            is_cut = 0 < count < size
            nets_cut += int(is_cut) - int(was_cut)

    for step, net in enumerate(order):
        pins = h.pins(net)
        if pins:
            share = 1.0 / sizes[net]
            for pin in pins:
                moved_weight[pin] += share
                if (
                    side[pin] == 0
                    and moved_weight[pin]
                    >= threshold * total_weight[pin] - _EPS
                ):
                    move_module(pin)
        if 0 < moved_count < n:
            ratio = ratio_cut_cost(nets_cut, n - moved_count, moved_count)
            if ratio < best_ratio:
                best_ratio = ratio
                best_cut = nets_cut
                best_sides = list(side)
                best_step = step
    return best_ratio, best_cut, best_sides, best_step


def ig_vote(
    h: Hypergraph,
    config: IGVoteConfig = IGVoteConfig(),
    order: Optional[Sequence[int]] = None,
) -> PartitionResult:
    """Partition ``h`` with the IG-Vote heuristic (Appendix B).

    ``order`` overrides the spectral net ordering, letting ablations feed
    the identical ordering to IG-Vote and IG-Match.
    """
    if h.num_modules < 2:
        raise PartitionError("IG-Vote needs at least 2 modules")
    if h.num_nets < 1:
        raise PartitionError("IG-Vote needs at least 1 net")

    start = time.perf_counter()
    if order is None:
        graph = intersection_graph(h, config.weighting)
        order = spectral_ordering(
            graph, backend=config.backend, seed=config.seed
        )
    elif sorted(order) != list(range(h.num_nets)):
        raise PartitionError("order must be a permutation of net indices")

    forward = _vote_pass(h, order, config.threshold)
    backward = _vote_pass(h, list(reversed(order)), config.threshold)
    direction = "forward" if forward[0] <= backward[0] else "backward"
    ratio, nets_cut, sides, step = (
        forward if direction == "forward" else backward
    )
    elapsed = time.perf_counter() - start

    if sides is None:
        raise PartitionError(
            "IG-Vote produced no feasible partition (all modules voted "
            "to one side at every step)"
        )
    # Side 1 collects the swept nets' modules; report U as side 0.
    partition = Partition(h, sides)
    return PartitionResult(
        algorithm="IG-Vote",
        partition=partition,
        elapsed_seconds=elapsed,
        details={
            "direction": direction,
            "best_step": step,
            "threshold": config.threshold,
            "weighting": config.weighting,
        },
    )
