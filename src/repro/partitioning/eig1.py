"""EIG1: spectral ratio-cut partitioning on the module graph.

The algorithm of Hagen–Kahng [13] that the paper uses as its non-dual
spectral baseline: convert the netlist to a module graph with a net model
(the standard weighted clique by default), sort the Fiedler vector of its
Laplacian to get a *module* ordering, evaluate every splitting rank, and
return the best ratio cut.  IG-Match's reported 22% average improvement
over EIG1 isolates the value of the intersection-graph representation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..errors import PartitionError
from ..hypergraph import Hypergraph
from ..netmodels import get_model
from ..spectral import spectral_ordering, sweep_module_splits
from .partition import Partition, PartitionResult

__all__ = ["EIG1Config", "eig1"]


@dataclass(frozen=True)
class EIG1Config:
    """Net model and eigensolver options."""

    net_model: str = "clique"
    backend: str = "scipy"
    seed: int = 0


def eig1(h: Hypergraph, config: EIG1Config = EIG1Config()) -> PartitionResult:
    """Partition ``h`` with the EIG1 spectral sweep."""
    if h.num_modules < 2:
        raise PartitionError("EIG1 needs at least 2 modules")
    start = time.perf_counter()
    model = get_model(config.net_model)
    graph = model.to_graph(h)
    order = spectral_ordering(graph, backend=config.backend, seed=config.seed)
    sweep = sweep_module_splits(h, order)
    u_side, _ = sweep.best_sides()
    partition = Partition.from_u_side(h, u_side)
    elapsed = time.perf_counter() - start
    return PartitionResult(
        algorithm="EIG1",
        partition=partition,
        elapsed_seconds=elapsed,
        details={
            "net_model": config.net_model,
            "best_rank": sweep.best.rank,
            "backend": config.backend,
            "graph_nonzeros": graph.num_nonzeros,
        },
    )
