"""RCut: ratio-cut iterative partitioning after Wei & Cheng.

A reimplementation of the RCut1.0 strategy the paper benchmarks against
([32]; the binary itself is not available).  Wei–Cheng adapt the
Fiduccia–Mattheyses machinery to the ratio-cut metric with two move
phases and random-restart stabilisation:

* **shifting** — FM-style passes with *no* balance constraint: cells move
  by best cut gain, and the pass keeps the prefix with the best *ratio
  cut* (the denominator term is what lets the partition drift toward its
  natural sizes);
* **group swapping** — passes restricted to alternate directions, so
  groups of cells exchange sides even when individual moves look neutral;
* **random restarts** — the whole optimisation is run from ``restarts``
  random initial partitions and the best result returned (the paper
  compares against the best of 10 RCut1.0 runs).

The initial partition seeds each run; a run iterates shifting and
swapping passes to convergence.

Restarts are independent, so they fan out through
:mod:`repro.parallel`: each restart gets its own seed spawned up front
from ``config.seed`` (never drawn from a shared stream, so adding a
restart leaves every earlier start unchanged), and the best-of
reduction happens in restart order — results are bit-identical across
the serial, thread, and process backends.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import PartitionError
from ..hypergraph import Hypergraph
from ..obs import span
from ..parallel import ParallelConfig, pstarmap, spawn_seeds
from .fm import FMEngine, random_balanced_sides
from .metrics import ratio_cut_cost
from .partition import Partition, PartitionResult

__all__ = ["RCutConfig", "rcut"]


@dataclass(frozen=True)
class RCutConfig:
    """Options for :func:`rcut`.

    ``restarts`` random starting partitions are optimised independently
    (Wei–Cheng report best-of-10).  ``max_rounds`` bounds the
    shift/swap rounds per restart.  ``parallel`` fans the restarts out
    over a worker pool (``None`` resolves from the ``REPRO_WORKERS`` /
    ``REPRO_BACKEND`` environment); the result never depends on the
    backend or worker count.
    """

    restarts: int = 10
    max_rounds: int = 12
    seed: int = 0
    min_side: int = 1
    parallel: Optional[ParallelConfig] = None


def _ratio(engine: FMEngine) -> float:
    return ratio_cut_cost(
        engine.cut, engine.side_count[0], engine.side_count[1]
    )


def _run_single(
    h: Hypergraph, sides: List[int], config: RCutConfig
) -> Tuple[List[int], float, int]:
    """Optimise one starting partition; returns (sides, ratio, rounds)."""
    engine = FMEngine(h, sides)
    min_side = max(1, config.min_side)

    def feasible_shift(cell: int) -> bool:
        return engine.side_count[engine.sides[cell]] > min_side

    rounds = 0
    best_ratio = _ratio(engine)
    for _ in range(config.max_rounds):
        rounds += 1
        improved = False

        # Shifting: unconstrained best-gain moves, best-ratio prefix.
        engine.run_pass(feasible_shift, objective="ratio")
        ratio = _ratio(engine)
        if ratio < best_ratio - 1e-15:
            best_ratio = ratio
            improved = True

        # Group swapping: strictly alternate move directions so the pass
        # exchanges groups between sides at constant balance.
        direction = [0]

        def feasible_swap(cell: int) -> bool:
            if engine.sides[cell] != direction[0]:
                return False
            return engine.side_count[engine.sides[cell]] > min_side

        # run_pass consults feasibility before each move; flip the
        # wanted direction after every kept move by wrapping move
        # selection: simplest is two half-passes.
        for phase in (0, 1):
            direction[0] = phase
            engine.run_pass(feasible_swap, objective="ratio")
        ratio = _ratio(engine)
        if ratio < best_ratio - 1e-15:
            best_ratio = ratio
            improved = True

        if not improved:
            break
    return list(engine.sides), best_ratio, rounds


def _restart_task(
    h: Hypergraph, config: RCutConfig, restart_seed: int
) -> Tuple[List[int], float, int]:
    """One restart: its own RNG from a spawned seed, then optimise.

    Module-level (picklable) so the process backend can run it; the
    per-restart RNG makes the outcome a pure function of
    ``(h, config, restart_seed)`` regardless of scheduling.
    """
    rng = random.Random(restart_seed)
    sides = random_balanced_sides(h, rng)
    with span("rcut.restart") as sp:
        final_sides, ratio, rounds = _run_single(h, sides, config)
        sp.set(ratio_cut=ratio, rounds=rounds)
    return final_sides, ratio, rounds


def rcut(
    h: Hypergraph,
    config: RCutConfig = RCutConfig(),
    initial_sides: Optional[List[int]] = None,
) -> PartitionResult:
    """Ratio-cut partitioning with shifting, group swapping and restarts.

    With ``initial_sides`` given, a single run is performed from that
    partition (no restarts) — used by the refinement wrapper.

    Each restart's starting partition is drawn from a private RNG
    seeded by ``spawn_seeds(config.seed, restarts)[i]``, so restart
    ``i`` is identical whether the run uses 1 restart or 100, one
    worker or eight.  (Historically all starts were drawn from one
    shared stream, so growing ``restarts`` perturbed every later
    start.)  Ties on the best ratio go to the lowest restart index.
    """
    if h.num_modules < 2:
        raise PartitionError("RCut needs at least 2 modules")
    start = time.perf_counter()

    with span("rcut", restarts=config.restarts) as rcut_span:
        if initial_sides is not None:
            final_sides, ratio, rounds = _run_single(
                h, list(initial_sides), config
            )
            outcomes = [(final_sides, ratio, rounds)]
        else:
            restart_seeds = spawn_seeds(config.seed, config.restarts)
            outcomes = pstarmap(
                _restart_task,
                [(h, config, s) for s in restart_seeds],
                config.parallel,
                label="rcut.restarts",
            )

        best_sides: Optional[List[int]] = None
        best_ratio = float("inf")
        runs = []
        for final_sides, ratio, rounds in outcomes:
            runs.append({"ratio_cut": ratio, "rounds": rounds})
            if ratio < best_ratio:
                best_ratio = ratio
                best_sides = final_sides
        rcut_span.set(best_of_runs=best_ratio)

    elapsed = time.perf_counter() - start
    if best_sides is None:
        raise PartitionError("RCut produced no partition")
    return PartitionResult(
        algorithm="RCut",
        partition=Partition(h, best_sides),
        elapsed_seconds=elapsed,
        details={
            "restarts": len(outcomes),
            "runs": runs,
            "best_of_runs": best_ratio,
            "seed": config.seed,
        },
    )
