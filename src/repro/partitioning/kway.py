"""Direct spectral k-way partitioning.

Recursive bipartition (:mod:`repro.partitioning.multiway`) is the
paper-era workhorse, but its successors (Chan–Schlag–Zien's spectral
k-way ratio cut; Yeh–Cheng–Lin's multiway "net perspective" refinement,
reference [35] of the paper) partition into k blocks *directly*:

1. embed the modules with the first ``d`` nontrivial Laplacian
   eigenvectors of the net-model graph (Hall's placement, Appendix A);
2. cluster the embedded points into k blocks (seeded k-means with
   farthest-point initialisation — no external dependencies);
3. greedily refine by single-module moves using *net gains* — the
   change in the number of multi-block nets — in the spirit of [35].

Quality is reported with the **scaled cost** metric,
``1/(n(k-1)) * sum_i external(block_i)/|block_i|`` — the multiway
generalisation of the ratio cut (it reduces to it, up to the constant,
for k = 2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import PartitionError
from ..hypergraph import Hypergraph
from ..netmodels import get_model
from ..spectral import hall_placement
from .multiway import MultiwayResult

__all__ = ["SpectralKWayConfig", "scaled_cost", "spectral_kway",
           "net_gain_refine"]


def scaled_cost(h: Hypergraph, block_of: Sequence[int], k: int) -> float:
    """Chan–Schlag–Zien scaled cost of a k-way partition.

    ``sum_i external_nets(block_i) / |block_i|``, normalised by
    ``n (k-1)``.  Lower is better; empty blocks are infeasible
    (infinity).
    """
    n = h.num_modules
    if len(block_of) != n:
        raise PartitionError(
            f"{len(block_of)} block labels for {n} modules"
        )
    sizes = [0] * k
    for b in block_of:
        if not 0 <= b < k:
            raise PartitionError(f"block label {b} outside 0..{k - 1}")
        sizes[b] += 1
    if any(s == 0 for s in sizes):
        return float("inf")
    external = [0] * k
    for _, pins in h.iter_nets():
        blocks = {block_of[p] for p in pins}
        if len(blocks) > 1:
            for b in blocks:
                external[b] += 1
    total = sum(external[i] / sizes[i] for i in range(k))
    return total / (n * (k - 1))


@dataclass(frozen=True)
class SpectralKWayConfig:
    """Options for :func:`spectral_kway`.

    ``dimensions`` defaults to ``k - 1`` embedding coordinates.
    ``refine_passes`` bounds the net-gain refinement loop.
    """

    net_model: str = "clique"
    dimensions: Optional[int] = None
    kmeans_iterations: int = 40
    refine_passes: int = 4
    #: Also run Sanchis-style multiway FM (locked passes with prefix
    #: revert) after the greedy net-gain refinement.  Stronger but
    #: O(n^2)-ish per pass — intended for small/medium netlists.
    fm_refine: bool = False
    seed: int = 0


def _farthest_point_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++-style spread-out initial centres."""
    n = points.shape[0]
    centres = [points[int(rng.integers(n))]]
    for _ in range(k - 1):
        distances = np.min(
            [np.sum((points - c) ** 2, axis=1) for c in centres], axis=0
        )
        centres.append(points[int(np.argmax(distances))])
    return np.array(centres)


def _kmeans(
    points: np.ndarray, k: int, iterations: int, seed: int
) -> np.ndarray:
    """Plain Lloyd's iterations; returns block labels."""
    rng = np.random.default_rng(seed)
    centres = _farthest_point_init(points, k, rng)
    labels = np.zeros(points.shape[0], dtype=int)
    for _ in range(iterations):
        distances = np.stack(
            [np.sum((points - c) ** 2, axis=1) for c in centres]
        )
        new_labels = np.argmin(distances, axis=0)
        if np.array_equal(new_labels, labels):
            labels = new_labels
            break
        labels = new_labels
        for b in range(k):
            members = points[labels == b]
            if len(members):
                centres[b] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster at the farthest point.
                distances = np.min(
                    np.stack(
                        [np.sum((points - c) ** 2, axis=1)
                         for c in centres]
                    ),
                    axis=0,
                )
                centres[b] = points[int(np.argmax(distances))]
    return labels


def net_gain_refine(
    h: Hypergraph,
    block_of: List[int],
    k: int,
    max_passes: int = 4,
    min_block: int = 1,
) -> int:
    """Greedy multiway refinement by net gains, in place.

    Repeatedly moves the module with the best positive *net gain* — the
    reduction in the number of nets spanning more than one block — to
    its best target block, never emptying a block below ``min_block``.
    Returns the total number of moves applied.  This is the net-centric
    move evaluation of Yeh et al. [35], simplified to first-order gains.
    """
    sizes = [0] * k
    for b in block_of:
        sizes[b] += 1

    def move_gain(module: int, target: int) -> int:
        """Spanning-net reduction if ``module`` moved to ``target``."""
        source = block_of[module]
        gain = 0
        for net in h.nets_of(module):
            pins = h.pins(net)
            if len(pins) < 2:
                continue
            counts: dict = {}
            for p in pins:
                counts[block_of[p]] = counts.get(block_of[p], 0) + 1
            spanning = len(counts) > 1
            counts[source] -= 1
            if counts[source] == 0:
                del counts[source]
            counts[target] = counts.get(target, 0) + 1
            now_spanning = len(counts) > 1
            gain += int(spanning) - int(now_spanning)
        return gain

    total_moves = 0
    for _ in range(max_passes):
        moved = 0
        for module in range(h.num_modules):
            source = block_of[module]
            if sizes[source] <= min_block:
                continue
            neighbour_blocks = {
                block_of[p]
                for net in h.nets_of(module)
                for p in h.pins(net)
            } - {source}
            best_gain = 0
            best_target = None
            for target in neighbour_blocks:
                gain = move_gain(module, target)
                if gain > best_gain:
                    best_gain = gain
                    best_target = target
            if best_target is not None:
                block_of[module] = best_target
                sizes[source] -= 1
                sizes[best_target] += 1
                moved += 1
        total_moves += moved
        if moved == 0:
            break
    return total_moves


def spectral_kway(
    h: Hypergraph,
    k: int,
    config: SpectralKWayConfig = SpectralKWayConfig(),
) -> MultiwayResult:
    """Partition ``h`` into ``k`` blocks by spectral embedding + k-means
    + net-gain refinement."""
    if k < 2:
        raise PartitionError(f"k must be >= 2, got {k}")
    if k > h.num_modules:
        raise PartitionError(
            f"cannot form {k} blocks from {h.num_modules} modules"
        )
    start = time.perf_counter()
    dimensions = config.dimensions or max(1, k - 1)
    graph = get_model(config.net_model).to_graph(h)
    placement = hall_placement(
        graph, dimensions=dimensions, seed=config.seed
    )
    labels = _kmeans(
        placement.coordinates, k, config.kmeans_iterations, config.seed
    )
    block_of = [int(b) for b in labels]

    # Guarantee no empty block (k-means can still starve one).
    sizes = [0] * k
    for b in block_of:
        sizes[b] += 1
    for empty in [b for b in range(k) if sizes[b] == 0]:
        donor = max(range(k), key=lambda b: sizes[b])
        victim = next(
            v for v in range(h.num_modules) if block_of[v] == donor
        )
        block_of[victim] = empty
        sizes[donor] -= 1
        sizes[empty] += 1

    moves = net_gain_refine(
        h, block_of, k, max_passes=config.refine_passes
    )
    if config.fm_refine:
        from .sanchis import KWayFMConfig, kway_fm_refine

        moves += kway_fm_refine(
            h, block_of, k,
            KWayFMConfig(max_passes=config.refine_passes),
        )
    elapsed = time.perf_counter() - start
    return MultiwayResult(
        hypergraph=h,
        block_of=block_of,
        num_blocks=k,
        elapsed_seconds=elapsed,
        details={
            "algorithm": "spectral-kway",
            "dimensions": dimensions,
            "net_model": config.net_model,
            "refine_moves": moves,
            "scaled_cost": scaled_cost(h, block_of, k),
        },
    )
