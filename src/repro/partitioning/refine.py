"""Post-refinement of partitions by iterative improvement.

The paper's conclusion suggests that "the ratio cuts so obtained may
optionally be improved by using standard iterative techniques" — this
module wraps a partition from any algorithm (typically IG-Match) in
ratio-cut shifting passes (the RCut machinery, single run, seeded from
the given partition) and keeps the better result.
"""

from __future__ import annotations

import time

from .partition import PartitionResult
from .rcut import RCutConfig, rcut

__all__ = ["refine"]


def refine(
    result: PartitionResult, max_rounds: int = 6
) -> PartitionResult:
    """Polish ``result`` with ratio-cut shifting passes.

    Returns a new :class:`PartitionResult` (algorithm tagged
    ``"<name>+refine"``) holding whichever partition has the lower ratio
    cut; refinement never degrades the input.
    """
    start = time.perf_counter()
    h = result.partition.hypergraph
    polished = rcut(
        h,
        RCutConfig(restarts=1, max_rounds=max_rounds),
        initial_sides=list(result.partition.sides),
    )
    elapsed = time.perf_counter() - start

    improved = polished.ratio_cut < result.ratio_cut
    best = polished.partition if improved else result.partition
    return PartitionResult(
        algorithm=f"{result.algorithm}+refine",
        partition=best,
        elapsed_seconds=result.elapsed_seconds + elapsed,
        details={
            **result.details,
            "refined": improved,
            "pre_refine_ratio_cut": result.ratio_cut,
        },
    )
