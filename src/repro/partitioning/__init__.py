"""Partitioning algorithms.

The paper's contribution (IG-Match) and every comparison point:

========  ==========================================================
IG-Match  spectral net ordering + matching-based completion (Sec. 3)
IG-Vote   spectral net ordering + voting completion (Appendix B)
EIG1      spectral module ordering under a net model (Hagen–Kahng)
RCut      ratio-cut FM with shifting/swapping/restarts (Wei–Cheng)
FM        balanced min-cut Fiduccia–Mattheyses
KL        Kernighan–Lin graph bisection
Anneal    simulated annealing on the ratio cut
========  ==========================================================

plus post-refinement (:func:`refine`) and recursive multiway
partitioning (:func:`recursive_partition`).
"""

from .annealing import AnnealingConfig, anneal
from .bucket_list import LinkedGainBuckets
from .eig1 import EIG1Config, eig1
from .exact import exact_min_cut_bisection, exact_min_ratio_cut
from .fm import FMConfig, FMEngine, GainBuckets, fm_bipartition
from .igmatch import (
    IGMatchConfig,
    SplitEvaluation,
    SweepWarmStart,
    ig_match,
    ig_match_sweep,
)
from .igvote import IGVoteConfig, ig_vote
from .kl import KLConfig, kl_bisection, kl_bisection_graph
from .kway import (
    SpectralKWayConfig,
    net_gain_refine,
    scaled_cost,
    spectral_kway,
)
from .metrics import (
    balance_ratio,
    cut_net_indices,
    graph_edge_cut,
    is_bisection,
    net_cut_count,
    ratio_cut_cost,
    ratio_cut_of_sides,
    weighted_net_cut,
)
from .multiway import MultiwayResult, recursive_partition
from .partition import Partition, PartitionResult
from .rcut import RCutConfig, rcut
from .refine import refine
from .replication import (
    ReplicationResult,
    replicate_for_cut,
    replication_cut,
)
from .report import partition_report
from .sanchis import KWayFMConfig, kway_fm_pass, kway_fm_refine

__all__ = [
    "AnnealingConfig",
    "EIG1Config",
    "FMConfig",
    "FMEngine",
    "GainBuckets",
    "IGMatchConfig",
    "IGVoteConfig",
    "KLConfig",
    "KWayFMConfig",
    "LinkedGainBuckets",
    "MultiwayResult",
    "Partition",
    "PartitionResult",
    "RCutConfig",
    "ReplicationResult",
    "SpectralKWayConfig",
    "SplitEvaluation",
    "SweepWarmStart",
    "anneal",
    "balance_ratio",
    "cut_net_indices",
    "eig1",
    "exact_min_cut_bisection",
    "exact_min_ratio_cut",
    "fm_bipartition",
    "graph_edge_cut",
    "ig_match",
    "ig_match_sweep",
    "ig_vote",
    "is_bisection",
    "kl_bisection",
    "kl_bisection_graph",
    "kway_fm_pass",
    "kway_fm_refine",
    "net_cut_count",
    "net_gain_refine",
    "partition_report",
    "ratio_cut_cost",
    "ratio_cut_of_sides",
    "rcut",
    "recursive_partition",
    "refine",
    "replicate_for_cut",
    "replication_cut",
    "scaled_cost",
    "spectral_kway",
    "weighted_net_cut",
]
