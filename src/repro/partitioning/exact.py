"""Exact minimum ratio cut by exhaustive enumeration.

Minimum ratio cut is NP-complete (Section 1.1 of the paper, via Bounded
Min-Cut Graph Partition), so this solver is only for *small* instances —
it enumerates all ``2^(n-1) - 1`` bipartitions with bitmask tricks.  Its
role is verification: the test suite uses it as an optimality oracle for
the heuristics, and Theorem 1's lower bound can be checked against the
true optimum.

Net cuts are evaluated in O(m) per candidate using precomputed pin
bitmasks: a net is cut by module subset ``S`` iff its mask intersects
both ``S`` and its complement.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from ..errors import PartitionError
from ..hypergraph import Hypergraph
from .metrics import ratio_cut_cost
from .partition import Partition, PartitionResult

__all__ = ["exact_min_ratio_cut", "exact_min_cut_bisection"]

_MAX_MODULES = 22


def _net_masks(h: Hypergraph) -> List[int]:
    masks = []
    for _, pins in h.iter_nets():
        if len(pins) < 2:
            continue
        mask = 0
        for p in pins:
            mask |= 1 << p
        masks.append(mask)
    return masks


def _enumerate(h: Hypergraph):
    """Yield (subset_mask, nets_cut, u_size) over all bipartitions.

    Module 0 is fixed on the U side, halving the search space (the two
    orientations of a bipartition are equivalent).
    """
    n = h.num_modules
    masks = _net_masks(h)
    full = (1 << n) - 1
    for subset in range(1, 1 << (n - 1)):
        u_mask = (subset << 1) | 1  # module 0 always in U
        if u_mask == full:
            continue
        w_mask = full & ~u_mask
        cut = sum(
            1 for m in masks if (m & u_mask) and (m & w_mask)
        )
        yield u_mask, cut, bin(u_mask).count("1")


def exact_min_ratio_cut(h: Hypergraph) -> PartitionResult:
    """The optimal ratio-cut bipartition of a small hypergraph.

    Raises :class:`PartitionError` beyond ``22`` modules — the search is
    exponential and anything larger is a misuse of this oracle.
    """
    n = h.num_modules
    if n < 2:
        raise PartitionError("need at least 2 modules")
    if n > _MAX_MODULES:
        raise PartitionError(
            f"exact search limited to {_MAX_MODULES} modules, got {n}"
        )
    start = time.perf_counter()
    best_ratio = float("inf")
    best_mask: Optional[int] = None
    best_cut = 0
    for u_mask, cut, u_size in _enumerate(h):
        ratio = ratio_cut_cost(cut, u_size, n - u_size)
        if ratio < best_ratio:
            best_ratio = ratio
            best_mask = u_mask
            best_cut = cut
    assert best_mask is not None
    sides = [0 if best_mask >> v & 1 else 1 for v in range(n)]
    elapsed = time.perf_counter() - start
    return PartitionResult(
        algorithm="Exact",
        partition=Partition(h, sides),
        elapsed_seconds=elapsed,
        details={"optimal": True, "nets_cut": best_cut},
    )


def exact_min_cut_bisection(h: Hypergraph) -> PartitionResult:
    """The optimal minimum-width bisection of a small hypergraph.

    Side sizes differ by at most one; ties in cut are broken toward
    better balance, then lexicographically.
    """
    n = h.num_modules
    if n < 2:
        raise PartitionError("need at least 2 modules")
    if n > _MAX_MODULES:
        raise PartitionError(
            f"exact search limited to {_MAX_MODULES} modules, got {n}"
        )
    start = time.perf_counter()
    best: Optional[Tuple[int, int]] = None  # (cut, u_mask)
    for u_mask, cut, u_size in _enumerate(h):
        if abs(2 * u_size - n) > 1:
            continue
        if best is None or cut < best[0]:
            best = (cut, u_mask)
    assert best is not None
    sides = [0 if best[1] >> v & 1 else 1 for v in range(n)]
    elapsed = time.perf_counter() - start
    return PartitionResult(
        algorithm="Exact-bisection",
        partition=Partition(h, sides),
        elapsed_seconds=elapsed,
        details={"optimal": True, "nets_cut": best[0]},
    )
