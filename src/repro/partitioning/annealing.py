"""Simulated-annealing ratio-cut partitioning.

The stochastic hill-climbing family of Kirkpatrick/Sechen (Section 1.1),
applied directly to the ratio-cut objective: single-module moves accepted
by the Metropolis criterion under a geometric cooling schedule.  Provided
as a stability/quality reference point — the paper's argument is that
deterministic spectral methods beat such randomised searches at far lower
cost.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import PartitionError
from ..hypergraph import Hypergraph
from .fm import random_balanced_sides
from .metrics import ratio_cut_cost
from .partition import Partition, PartitionResult

__all__ = ["AnnealingConfig", "anneal"]


@dataclass(frozen=True)
class AnnealingConfig:
    """Cooling-schedule parameters.

    ``moves_per_temperature`` defaults to 4x the module count (set
    explicitly for big netlists).  Temperature is in ratio-cut units and
    decays geometrically by ``cooling`` until ``t_final``.
    """

    t_initial: float = 1e-2
    t_final: float = 1e-7
    cooling: float = 0.9
    moves_per_temperature: Optional[int] = None
    seed: int = 0


def anneal(
    h: Hypergraph,
    config: AnnealingConfig = AnnealingConfig(),
    initial_sides: Optional[Sequence[int]] = None,
) -> PartitionResult:
    """Anneal a ratio-cut bipartition of ``h``."""
    n = h.num_modules
    if n < 2:
        raise PartitionError("annealing needs at least 2 modules")
    start = time.perf_counter()
    rng = random.Random(config.seed)
    sides = (
        list(initial_sides)
        if initial_sides is not None
        else random_balanced_sides(h, rng)
    )

    sizes = h.net_sizes()
    pins_on_1 = [0] * h.num_nets
    for net, pins in h.iter_nets():
        for p in pins:
            pins_on_1[net] += sides[p]
    cut = sum(
        1
        for net in range(h.num_nets)
        if 0 < pins_on_1[net] < sizes[net]
    )
    count1 = sum(sides)

    def move_cost_delta(v: int) -> tuple:
        """(new_cut, new_count1) if v flipped."""
        s = sides[v]
        delta_cut = 0
        for net in h.nets_of(v):
            size = sizes[net]
            on1 = pins_on_1[net]
            was = 0 < on1 < size
            on1 += 1 if s == 0 else -1
            now = 0 < on1 < size
            delta_cut += int(now) - int(was)
        new_count1 = count1 + (1 if s == 0 else -1)
        return cut + delta_cut, new_count1

    def apply_move(v: int) -> None:
        nonlocal cut, count1
        s = sides[v]
        for net in h.nets_of(v):
            size = sizes[net]
            on1 = pins_on_1[net]
            was = 0 < on1 < size
            on1 += 1 if s == 0 else -1
            pins_on_1[net] = on1
            now = 0 < on1 < size
            cut += int(now) - int(was)
        count1 += 1 if s == 0 else -1
        sides[v] = 1 - s

    moves = config.moves_per_temperature or 4 * n
    best_sides = list(sides)
    best_ratio = ratio_cut_cost(cut, n - count1, count1)
    accepted_total = 0
    temperature = config.t_initial
    while temperature > config.t_final:
        for _ in range(moves):
            v = rng.randrange(n)
            # Keep both sides non-empty.
            if sides[v] == 1 and count1 == 1:
                continue
            if sides[v] == 0 and n - count1 == 1:
                continue
            current = ratio_cut_cost(cut, n - count1, count1)
            new_cut, new_count1 = move_cost_delta(v)
            candidate = ratio_cut_cost(new_cut, n - new_count1, new_count1)
            delta = candidate - current
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                apply_move(v)
                accepted_total += 1
                if candidate < best_ratio:
                    best_ratio = candidate
                    best_sides = list(sides)
        temperature *= config.cooling

    elapsed = time.perf_counter() - start
    return PartitionResult(
        algorithm="Annealing",
        partition=Partition(h, best_sides),
        elapsed_seconds=elapsed,
        details={
            "accepted_moves": accepted_total,
            "seed": config.seed,
            "t_initial": config.t_initial,
            "t_final": config.t_final,
        },
    )
