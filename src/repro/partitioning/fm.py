"""Fiduccia–Mattheyses iterative improvement with gain buckets.

The classic linear-time-per-pass hypergraph bipartitioner [7], used by the
paper (via Wei–Cheng's RCut1.0 adaptation) as the iterative baseline
family.  This module provides:

* :class:`GainBuckets` — the bucket-list structure keyed by gain;
* :class:`FMEngine` — incremental gain maintenance, single FM passes with
  a balance constraint, and prefix-revert semantics;
* :func:`fm_bipartition` — the standard multi-pass r-balanced FM
  partitioner (minimum net cut subject to a balance tolerance).

The ratio-cut variant built on the same engine lives in
:mod:`repro.partitioning.rcut`.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core import csr_active
from ..errors import PartitionError
from ..hypergraph import Hypergraph
from ..obs import emit, incr, is_enabled, span
from ..parallel import ParallelConfig, pstarmap, spawn_seeds
from .metrics import ratio_cut_cost
from .partition import Partition, PartitionResult

__all__ = ["GainBuckets", "SideBuckets", "FMEngine", "FMConfig",
           "fm_bipartition", "fm_refine_engine", "random_balanced_sides"]


class GainBuckets:
    """Cells bucketed by gain, with O(1) expected operations.

    A simplified bucket list: gain -> set of cells, plus a max-gain
    cursor.  ``pop_best`` returns an arbitrary cell of maximum gain that
    satisfies the caller's feasibility predicate.
    """

    def __init__(self) -> None:
        self._buckets: Dict[int, Set[int]] = {}
        self._max_gain: Optional[int] = None

    def __len__(self) -> int:
        return sum(len(s) for s in self._buckets.values())

    def insert(self, cell: int, gain: int) -> None:
        self._buckets.setdefault(gain, set()).add(cell)
        if self._max_gain is None or gain > self._max_gain:
            self._max_gain = gain

    def remove(self, cell: int, gain: int) -> None:
        bucket = self._buckets.get(gain)
        if bucket is None or cell not in bucket:
            raise PartitionError(
                f"cell {cell} not in gain bucket {gain}"
            )
        bucket.remove(cell)
        if not bucket:
            del self._buckets[gain]
            if gain == self._max_gain:
                self._max_gain = max(self._buckets, default=None)

    def update(self, cell: int, old_gain: int, delta: int) -> int:
        """Move a cell between buckets; returns the new gain."""
        if delta == 0:
            return old_gain
        new_gain = old_gain + delta
        self.remove(cell, old_gain)
        self.insert(cell, new_gain)
        return new_gain

    def iter_best_first(self):
        """Yield ``(gain, cell)`` pairs from the highest bucket down."""
        for gain in sorted(self._buckets, reverse=True):
            for cell in tuple(self._buckets[gain]):
                yield gain, cell


class SideBuckets:
    """One :class:`GainBuckets` per partition side.

    Lets a pass ask for the best-gain *feasible* candidate on each side
    separately — required by ratio-gain move selection, where the best
    move from the small side and the best from the large side must be
    compared by their resulting ratio cuts, not by raw cut gain.
    """

    def __init__(self) -> None:
        self._buckets = (GainBuckets(), GainBuckets())
        self._side_of: Dict[int, int] = {}

    def insert(self, cell: int, gain: int, side: int) -> None:
        self._side_of[cell] = side
        self._buckets[side].insert(cell, gain)

    def remove(self, cell: int, gain: int) -> None:
        side = self._side_of.pop(cell)
        self._buckets[side].remove(cell, gain)

    def update(self, cell: int, old_gain: int, delta: int) -> int:
        return self._buckets[self._side_of[cell]].update(
            cell, old_gain, delta
        )

    def best_feasible(self, side: int, feasible):
        """``(gain, cell)`` of the best feasible cell on ``side``."""
        for gain, cell in self._buckets[side].iter_best_first():
            if feasible(cell):
                return gain, cell
        return None

    def tied_feasible(self, side: int, feasible, limit: int = 8):
        """All feasible cells sharing the best feasible gain on
        ``side``, up to ``limit`` — the tie set for lookahead
        selection.  Returns ``(gain, [cells])`` or ``None``."""
        best_gain = None
        cells = []
        for gain, cell in self._buckets[side].iter_best_first():
            if best_gain is not None and gain < best_gain:
                break
            if feasible(cell):
                best_gain = gain
                cells.append(cell)
                if len(cells) >= limit:
                    break
        if best_gain is None:
            return None
        return best_gain, cells


class FMEngine:
    """Mutable FM state over a hypergraph bipartition.

    Maintains, incrementally under single-cell moves:

    * per-net pin counts on each side,
    * the current net cut,
    * per-cell gains (cut decrease if the cell moved), via the standard
      before/after critical-net rules of Fiduccia–Mattheyses,
    * side sizes and areas.

    The engine itself enforces no balance rule — callers pass a
    feasibility predicate to :meth:`run_pass`.
    """

    def __init__(self, h: Hypergraph, sides: Sequence[int]):
        if len(sides) != h.num_modules:
            raise PartitionError(
                f"{len(sides)} sides for {h.num_modules} modules"
            )
        self.h = h
        self.sides: List[int] = [int(s) for s in sides]
        if any(s not in (0, 1) for s in self.sides):
            raise PartitionError("sides must be 0/1")
        self.side_count = [
            self.sides.count(0),
            h.num_modules - self.sides.count(0),
        ]
        areas = h.module_areas
        self.side_area = [0.0, 0.0]
        for v, s in enumerate(self.sides):
            self.side_area[s] += areas[v]
        if csr_active():
            self._init_counts_csr()
        else:
            self.pin_count = [[0, 0] for _ in range(h.num_nets)]
            for net, pins in h.iter_nets():
                for pin in pins:
                    self.pin_count[net][self.sides[pin]] += 1
            self.cut = sum(
                1
                for counts in self.pin_count
                if counts[0] > 0 and counts[1] > 0
            )
            self.gains = [
                self._compute_gain(v) for v in range(h.num_modules)
            ]
        # Stats of the most recent run_pass (moved/kept/best_value).
        self.last_pass = {"moved": 0, "kept": 0, "best_value": 0.0}

    @classmethod
    def from_state(
        cls,
        h: Hypergraph,
        sides: Sequence[int],
        pin_count: Sequence[Sequence[int]],
        cut: int,
        gains: Sequence[int],
        recompute_gains: Sequence[int] = (),
    ) -> "FMEngine":
        """Build an engine from previously computed gain structures.

        The ECO warm-start constructor: ``pin_count``/``cut``/``gains``
        are pure functions of ``(h, sides)``, so a caller holding them
        from an earlier engine (remapped through a netlist delta) can
        skip the O(pins) cold initialisation and recompute only the
        ``recompute_gains`` modules whose neighbourhoods the delta
        touched.  The caller is trusted on the untouched entries — the
        differential tests assert the patched state equals a cold
        ``FMEngine(h, sides)`` build.
        """
        if len(sides) != h.num_modules:
            raise PartitionError(
                f"{len(sides)} sides for {h.num_modules} modules"
            )
        if len(pin_count) != h.num_nets or len(gains) != h.num_modules:
            raise PartitionError("warm FM state does not match hypergraph")
        engine = cls.__new__(cls)
        engine.h = h
        engine.sides = [int(s) for s in sides]
        if any(s not in (0, 1) for s in engine.sides):
            raise PartitionError("sides must be 0/1")
        engine.side_count = [
            engine.sides.count(0),
            h.num_modules - engine.sides.count(0),
        ]
        areas = h.module_areas
        engine.side_area = [0.0, 0.0]
        for v, s in enumerate(engine.sides):
            engine.side_area[s] += areas[v]
        engine.pin_count = [list(counts) for counts in pin_count]
        engine.cut = int(cut)
        engine.gains = [int(g) for g in gains]
        for v in recompute_gains:
            engine.gains[v] = engine._compute_gain(v)
        engine.last_pass = {"moved": 0, "kept": 0, "best_value": 0.0}
        return engine

    # ------------------------------------------------------------------
    def _init_counts_csr(self) -> None:
        """Vectorised pin-count / cut / gain initialisation (csr core).

        Pure integer arithmetic over the flat CSR pin arrays, so the
        results equal the reference loops exactly: bincount the pins by
        side for per-net counts, then sum each pin's FS/TE critical-net
        contribution per module.  Only initialisation is vectorised —
        the incremental :meth:`move` bookkeeping and bucket insertion
        order (which is visit-order-sensitive) stay untouched.
        """
        import numpy as np

        h = self.h
        m = h.num_nets
        n = h.num_modules
        csr = h.csr
        sizes = np.diff(csr.net_indptr)
        pin_modules = csr.net_indices
        pin_nets = np.repeat(np.arange(m, dtype=np.int64), sizes)
        sides_arr = np.asarray(self.sides, dtype=np.int64)
        pin_sides = sides_arr[pin_modules]
        in1 = np.bincount(pin_nets[pin_sides == 1], minlength=m)
        in0 = sizes - in1
        self.pin_count = np.stack((in0, in1), axis=1).tolist()
        self.cut = int(np.count_nonzero((in0 > 0) & (in1 > 0)))
        valid = sizes >= 2
        count_same = np.where(pin_sides == 0, in0[pin_nets], in1[pin_nets])
        count_other = np.where(
            pin_sides == 0, in1[pin_nets], in0[pin_nets]
        )
        contribution = np.where(
            valid[pin_nets],
            (count_same == 1).astype(np.int64)
            - (count_other == 0).astype(np.int64),
            0,
        )
        gains = np.bincount(pin_modules, weights=contribution, minlength=n)
        self.gains = gains.astype(np.int64).tolist()

    # ------------------------------------------------------------------
    def _compute_gain(self, cell: int) -> int:
        """Gain of moving ``cell``: FS(cell) - TE(cell)."""
        side = self.sides[cell]
        other = 1 - side
        gain = 0
        for net in self.h.nets_of(cell):
            counts = self.pin_count[net]
            if counts[side] + counts[other] < 2:
                continue
            if counts[side] == 1:
                gain += 1  # cell is the sole pin on its side: uncuts
            if counts[other] == 0:
                gain -= 1  # net entirely on cell's side: move cuts it
        return gain

    def move(self, cell: int, buckets: Optional[GainBuckets] = None,
             locked: Optional[Sequence[bool]] = None) -> None:
        """Move ``cell`` to the other side, updating cut and gains.

        If ``buckets`` is given, free (unlocked) neighbours are re-bucketed
        as their gains change (the moved cell itself must already have been
        removed from the buckets by the caller).
        """
        h = self.h
        from_side = self.sides[cell]
        to_side = 1 - from_side
        for net in h.nets_of(cell):
            counts = self.pin_count[net]
            size = counts[0] + counts[1]
            if size < 2:
                counts[from_side] -= 1
                counts[to_side] += 1
                continue
            # --- before-move critical checks (w.r.t. the TO side) ---
            if counts[to_side] == 0:
                # Net becomes cut by this move.
                self.cut += 1
                self._adjust_net_gains(net, +1, None, buckets, locked, cell)
            elif counts[to_side] == 1:
                self._adjust_single(net, to_side, -1, buckets, locked, cell)
            counts[from_side] -= 1
            counts[to_side] += 1
            # --- after-move critical checks (w.r.t. the FROM side) ---
            if counts[from_side] == 0:
                # Net is no longer cut.
                self.cut -= 1
                self._adjust_net_gains(net, -1, None, buckets, locked, cell)
            elif counts[from_side] == 1:
                self._adjust_single(net, from_side, +1, buckets, locked, cell)
        self.sides[cell] = to_side
        self.side_count[from_side] -= 1
        self.side_count[to_side] += 1
        area = h.module_area(cell)
        self.side_area[from_side] -= area
        self.side_area[to_side] += area
        self.gains[cell] = self._compute_gain(cell)

    def _adjust_net_gains(self, net, delta, _unused, buckets, locked, mover):
        """Add ``delta`` to the gain of every pin of ``net`` except the
        mover."""
        for pin in self.h.pins(net):
            if pin == mover:
                continue
            if locked is not None and locked[pin]:
                self.gains[pin] += delta
                continue
            if buckets is not None:
                self.gains[pin] = buckets.update(
                    pin, self.gains[pin], delta
                )
            else:
                self.gains[pin] += delta

    def _adjust_single(self, net, side, delta, buckets, locked, mover):
        """Adjust the single pin of ``net`` on ``side`` (if not mover)."""
        for pin in self.h.pins(net):
            if pin != mover and self.sides[pin] == side:
                if locked is not None and locked[pin]:
                    self.gains[pin] += delta
                elif buckets is not None:
                    self.gains[pin] = buckets.update(
                        pin, self.gains[pin], delta
                    )
                else:
                    self.gains[pin] += delta
                return

    # ------------------------------------------------------------------
    def lookahead_gain(
        self, cell: int, locked: Optional[Sequence[bool]] = None
    ) -> int:
        """Krishnamurthy-style second-level gain of ``cell``.

        Counts nets that would become *critical in our favour* once the
        cell moved: a net with exactly two pins on the cell's side whose
        other side-mate is still free will be uncuttable by one further
        move (+1), while a net whose single to-side pin is free loses
        that potential (-1).  Used to break first-level gain ties
        ([21]); exact multi-level gain vectors are overkill for a
        tie-breaker and this on-demand form needs no extra bookkeeping.
        """
        side = self.sides[cell]
        other = 1 - side
        h = self.h
        gain2 = 0
        for net in h.nets_of(cell):
            counts = self.pin_count[net]
            if counts[side] + counts[other] < 2:
                continue
            if counts[side] == 2:
                mate_free = any(
                    p != cell
                    and self.sides[p] == side
                    and (locked is None or not locked[p])
                    for p in h.pins(net)
                )
                if mate_free:
                    gain2 += 1
            if counts[other] == 1:
                target = next(
                    (
                        p
                        for p in h.pins(net)
                        if self.sides[p] == other
                    ),
                    None,
                )
                if target is not None and (
                    locked is None or not locked[target]
                ):
                    gain2 -= 1
        return gain2

    def _current_value(self, objective: str) -> float:
        if objective == "cut":
            return float(self.cut)
        return ratio_cut_cost(
            self.cut, self.side_count[0], self.side_count[1]
        )

    def _candidate_value(self, objective: str, cell: int, gain: int) -> float:
        """Objective value the partition would have after moving ``cell``."""
        new_cut = self.cut - gain
        if objective == "cut":
            return float(new_cut)
        # The from side loses one module, the to side gains one.
        from_side = self.sides[cell]
        if from_side == 0:
            u, w = self.side_count[0] - 1, self.side_count[1] + 1
        else:
            u, w = self.side_count[0] + 1, self.side_count[1] - 1
        return ratio_cut_cost(new_cut, u, w)

    def run_pass(
        self, feasible, objective="cut", lookahead: int = 1
    ) -> Tuple[int, float]:
        """One FM pass with prefix revert.

        Every cell moves at most once.  At each step the best-gain
        feasible candidate of each side is found and the move minimising
        the post-move ``objective`` is applied (for ``"cut"`` this is
        classic FM best-gain selection; for ``"ratio"`` it is Wei–Cheng's
        myopic ratio-gain selection, where the denominator term makes
        moves from the large side more attractive).  With
        ``lookahead >= 2``, first-level gain ties are broken by the
        Krishnamurthy second-level gain (:meth:`lookahead_gain`).  The
        pass tracks the prefix with the best objective value and reverts
        the rest.

        Returns ``(moves_kept, best_objective_value)``.
        """
        if objective not in ("cut", "ratio"):
            raise PartitionError(f"unknown objective {objective!r}")
        h = self.h
        n = h.num_modules
        locked = [False] * n
        buckets = SideBuckets()
        for v in range(n):
            buckets.insert(v, self.gains[v], self.sides[v])

        move_sequence: List[int] = []
        best_prefix = 0
        best_value = self._current_value(objective)

        while True:
            candidates = []
            for side in (0, 1):
                if lookahead >= 2:
                    found = buckets.tied_feasible(side, feasible)
                    if found is None:
                        continue
                    gain, tied = found
                    cell = max(
                        tied,
                        key=lambda c: self.lookahead_gain(c, locked),
                    )
                    candidates.append(
                        (
                            self._candidate_value(objective, cell, gain),
                            -gain,
                            cell,
                        )
                    )
                else:
                    found = buckets.best_feasible(side, feasible)
                    if found is not None:
                        gain, cell = found
                        candidates.append(
                            (
                                self._candidate_value(
                                    objective, cell, gain
                                ),
                                -gain,
                                cell,
                            )
                        )
            if not candidates:
                break
            _, neg_gain, chosen = min(candidates)
            buckets.remove(chosen, -neg_gain)
            locked[chosen] = True
            self.move(chosen, buckets=buckets, locked=locked)
            move_sequence.append(chosen)
            value = self._current_value(objective)
            if value < best_value:
                best_value = value
                best_prefix = len(move_sequence)

        # Revert moves beyond the best prefix.
        for cell in reversed(move_sequence[best_prefix:]):
            self.move(cell)
        # Telemetry for callers/obs: what the pass actually did.
        self.last_pass = {
            "moved": len(move_sequence),
            "kept": best_prefix,
            "best_value": best_value,
        }
        return best_prefix, best_value

    def partition(self) -> Partition:
        return Partition(self.h, self.sides)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FMConfig:
    """Options for :func:`fm_bipartition`.

    ``balance_tolerance`` is the allowed deviation of either side's area
    from half the total, as a fraction of the total area (0.0 requests a
    bisection up to one cell).  ``max_passes`` bounds the pass loop;
    passes stop early when one yields no improvement.  ``lookahead=2``
    enables Krishnamurthy second-level gain tie-breaking [21].

    ``starts > 1`` runs the whole multi-pass optimisation from that
    many independent random initial partitions (seeds spawned up front
    from ``seed``) and keeps the lowest cut — classic multi-start
    refinement.  The starts fan out through :mod:`repro.parallel`
    according to ``parallel`` (``None`` resolves from the
    ``REPRO_WORKERS`` / ``REPRO_BACKEND`` environment); results are
    identical on every backend.  ``starts=1`` preserves the historical
    single-start behaviour (initial partition drawn directly from
    ``random.Random(seed)``).
    """

    balance_tolerance: float = 0.10
    max_passes: int = 20
    seed: int = 0
    lookahead: int = 1
    starts: int = 1
    parallel: Optional[ParallelConfig] = None


def random_balanced_sides(
    h: Hypergraph, rng: random.Random
) -> List[int]:
    """A random half/half side assignment (by module count)."""
    order = list(range(h.num_modules))
    rng.shuffle(order)
    sides = [0] * h.num_modules
    for v in order[len(order) // 2 :]:
        sides[v] = 1
    return sides


def _optimise_start(
    h: Hypergraph, sides: List[int], config: FMConfig
) -> Tuple[List[int], int, int]:
    """The multi-pass FM loop from one initial partition.

    Returns ``(final_sides, cut, passes)``.  Module-level and driven by
    plain data so multi-start refinement can run it in process workers.
    """
    return fm_refine_engine(FMEngine(h, sides), config)


def fm_refine_engine(
    engine: FMEngine, config: FMConfig
) -> Tuple[List[int], int, int]:
    """Run the multi-pass FM loop on an already-initialised engine.

    Returns ``(final_sides, cut, passes)``.  Factored out of
    :func:`_optimise_start` so the ECO warm path can refine an engine
    built via :meth:`FMEngine.from_state` without paying a cold
    initialisation; behaviour is identical for a freshly built engine.
    """
    h = engine.h
    total_area = h.total_area
    max_cell_area = max(h.module_areas, default=0.0)
    slack = config.balance_tolerance * total_area + max_cell_area
    low = total_area / 2 - slack
    high = total_area / 2 + slack

    def feasible(cell: int) -> bool:
        from_side = engine.sides[cell]
        # Never empty a side: zero-area modules (pads) make the area
        # window insufficient on its own.
        if engine.side_count[from_side] <= 1:
            return False
        to_side = 1 - from_side
        area = h.module_area(cell)
        new_to = engine.side_area[to_side] + area
        new_from = engine.side_area[from_side] - area
        return low <= new_to <= high and low <= new_from <= high

    passes = 0
    profiling = is_enabled()
    cut_initial = engine.cut
    pass_cuts: List[int] = []
    pass_kept: List[int] = []
    with span(
        "fm", modules=h.num_modules, nets=h.num_nets, cut_initial=engine.cut
    ) as fm_span:
        for _ in range(config.max_passes):
            before = engine.cut
            moves, _ = engine.run_pass(
                feasible, objective="cut", lookahead=config.lookahead
            )
            passes += 1
            if profiling:
                incr("fm.passes")
                incr("fm.moves_attempted", engine.last_pass["moved"])
                incr("fm.moves_kept", moves)
                emit(
                    "fm.pass",
                    index=passes,
                    moved=engine.last_pass["moved"],
                    kept=moves,
                    cut_before=before,
                    cut_after=engine.cut,
                )
                pass_cuts.append(engine.cut)
                pass_kept.append(moves)
            if engine.cut >= before or moves == 0:
                break
        fm_span.set(passes=passes, cut_final=engine.cut)
        if profiling and pass_cuts:
            # The per-pass gain curve: cut after each pass, starting
            # from the initial cut at pass 0.
            emit(
                "fm.curve",
                cut_initial=cut_initial,
                passes=list(range(len(pass_cuts) + 1)),
                cuts=[cut_initial] + pass_cuts,
                kept=pass_kept,
            )
    return list(engine.sides), engine.cut, passes


def _fm_start_task(
    h: Hypergraph, config: FMConfig, start_seed: int
) -> Tuple[List[int], int, int]:
    """One multi-start run from a spawned per-start seed (picklable)."""
    rng = random.Random(start_seed)
    sides = random_balanced_sides(h, rng)
    return _optimise_start(h, sides, config)


def fm_bipartition(
    h: Hypergraph,
    config: FMConfig = FMConfig(),
    initial_sides: Optional[Sequence[int]] = None,
) -> PartitionResult:
    """Min-net-cut r-balanced bipartition by multi-pass FM.

    With ``config.starts > 1`` (and no ``initial_sides``) the
    optimisation is repeated from independent random starts and the
    lowest final cut wins; ties go to the lowest start index, so the
    result is deterministic and backend-independent.
    """
    if h.num_modules < 2:
        raise PartitionError("FM needs at least 2 modules")
    start = time.perf_counter()

    multi_start = initial_sides is None and config.starts > 1
    if multi_start:
        with span("fm.multistart", starts=config.starts) as ms_span:
            start_seeds = spawn_seeds(config.seed, config.starts)
            outcomes = pstarmap(
                _fm_start_task,
                [(h, config, s) for s in start_seeds],
                config.parallel,
                label="fm.starts",
            )
            best_sides, best_cut, best_passes = outcomes[0]
            for sides, cut, passes in outcomes[1:]:
                if cut < best_cut:
                    best_sides, best_cut, best_passes = sides, cut, passes
            ms_span.set(cut_final=best_cut)
    else:
        if initial_sides is None:
            rng = random.Random(config.seed)
            sides = random_balanced_sides(h, rng)
        else:
            sides = list(initial_sides)
        best_sides, best_cut, best_passes = _optimise_start(
            h, sides, config
        )

    elapsed = time.perf_counter() - start
    return PartitionResult(
        algorithm="FM",
        partition=Partition(h, best_sides),
        elapsed_seconds=elapsed,
        details={
            "passes": best_passes,
            "balance_tolerance": config.balance_tolerance,
            "seed": config.seed,
            "lookahead": config.lookahead,
            "starts": config.starts if multi_start else 1,
        },
    )
