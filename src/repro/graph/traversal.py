"""Graph traversal: BFS, connected components, diameters.

Connectivity matters to the spectral pipeline: the Fiedler vector of a
disconnected graph is degenerate (the second eigenvalue is 0 and the
eigenvector is an indicator of a component), so
:mod:`repro.spectral.fiedler` uses :func:`connected_components` to handle
each component explicitly.  Diameters of the intersection graph were the
basis of Kahng's earlier 1989 hypergraph bisection heuristic, referenced in
Section 2.2.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .graph import Graph

__all__ = [
    "bfs_order",
    "bfs_distances",
    "connected_components",
    "is_connected",
    "eccentricity",
    "approximate_diameter",
]


def bfs_order(g: "Graph", start: int) -> List[int]:
    """Vertices reachable from ``start`` in BFS visitation order."""
    seen = [False] * g.num_vertices
    seen[start] = True
    order = [start]
    queue = deque([start])
    while queue:
        u = queue.popleft()
        for v in g.neighbors(u):
            if not seen[v]:
                seen[v] = True
                order.append(v)
                queue.append(v)
    return order


def bfs_distances(g: "Graph", start: int) -> List[Optional[int]]:
    """Hop distances from ``start``; ``None`` for unreachable vertices."""
    dist: List[Optional[int]] = [None] * g.num_vertices
    dist[start] = 0
    queue = deque([start])
    while queue:
        u = queue.popleft()
        base = dist[u]
        assert base is not None
        for v in g.neighbors(u):
            if dist[v] is None:
                dist[v] = base + 1
                queue.append(v)
    return dist


def connected_components(g: "Graph") -> List[List[int]]:
    """All connected components, each a sorted vertex list.

    Components are ordered by their smallest vertex.  Isolated vertices
    form singleton components.
    """
    seen = [False] * g.num_vertices
    components: List[List[int]] = []
    for start in range(g.num_vertices):
        if seen[start]:
            continue
        component = bfs_order(g, start)
        for v in component:
            seen[v] = True
        components.append(sorted(component))
    return components


def is_connected(g: "Graph") -> bool:
    """True when ``g`` has exactly one connected component (or is empty)."""
    if g.num_vertices == 0:
        return True
    return len(bfs_order(g, 0)) == g.num_vertices


def eccentricity(g: "Graph", v: int) -> int:
    """Largest hop distance from ``v`` to any reachable vertex."""
    return max(d for d in bfs_distances(g, v) if d is not None)


def approximate_diameter(g: "Graph") -> int:
    """A lower bound on the diameter via double-sweep BFS.

    Runs BFS from vertex 0, then from the farthest vertex found; the
    second sweep's eccentricity is a well-known 2-approximation that is
    exact on trees.  Only the component containing vertex 0 is examined.
    """
    if g.num_vertices == 0:
        return 0
    first = bfs_distances(g, 0)
    reachable = [(d, v) for v, d in enumerate(first) if d is not None]
    farthest = max(reachable)[1]
    return eccentricity(g, farthest)
