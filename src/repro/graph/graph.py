"""Sparse weighted undirected graphs.

:class:`Graph` is the representation shared by the net-model graphs
(clique/star/path expansions of the hypergraph) and the intersection graph.
It stores a weighted adjacency list; parallel edge insertions accumulate
weight, which is exactly the semantics the net models need (two nets both
connecting modules *u* and *v* add their contributions to ``A_uv``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from ..errors import GraphError

__all__ = ["Graph"]


class Graph:
    """A weighted undirected graph on vertices ``0 .. n-1``.

    Self-loops are rejected: by the convention of the paper (Section 1.1),
    ``A_ii = 0`` always.

    Examples
    --------
    >>> g = Graph(3)
    >>> g.add_edge(0, 1, 0.5)
    >>> g.add_edge(0, 1, 0.25)   # accumulates
    >>> g.weight(0, 1)
    0.75
    >>> g.degree(0)
    0.75
    """

    __slots__ = ("_adj", "_num_edges", "_total_weight", "_csr_cache")

    def __init__(self, num_vertices: int):
        if num_vertices < 0:
            raise GraphError(f"negative vertex count {num_vertices}")
        self._adj: List[Dict[int, float]] = [
            {} for _ in range(num_vertices)
        ]
        self._num_edges = 0
        self._total_weight = 0.0
        # Optional (indptr, indices, data) numpy triple describing the
        # symmetric adjacency in canonical CSR form (rows complete,
        # columns sorted).  Populated by bulk builders (the CSR-core
        # intersection build) or lazily by repro.graph.laplacian;
        # invalidated by any mutation.
        self._csr_cache = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add ``weight`` to the edge ``{u, v}`` (creating it if absent)."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError(f"self-loop on vertex {u} rejected (A_ii = 0)")
        if weight <= 0:
            raise GraphError(
                f"edge ({u},{v}) weight must be positive, got {weight}"
            )
        if v not in self._adj[u]:
            self._num_edges += 1
            self._adj[u][v] = 0.0
            self._adj[v][u] = 0.0
        self._adj[u][v] += weight
        self._adj[v][u] += weight
        self._total_weight += weight
        self._csr_cache = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of distinct undirected edges."""
        return self._num_edges

    @property
    def num_nonzeros(self) -> int:
        """Number of nonzeros in the (symmetric) adjacency matrix.

        Each undirected edge contributes two nonzeros; this matches the
        nonzero accounting the paper uses for sparsity comparisons.
        """
        return 2 * self._num_edges

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return self._total_weight

    def has_edge(self, u: int, v: int) -> bool:
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adj[u]

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}``; zero when the edge is absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        return self._adj[u].get(v, 0.0)

    def neighbors(self, u: int) -> Iterator[int]:
        """Iterate over neighbours of ``u``."""
        self._check_vertex(u)
        return iter(self._adj[u])

    def neighbor_weights(self, u: int) -> Iterator[Tuple[int, float]]:
        """Iterate over ``(neighbor, weight)`` pairs of ``u``."""
        self._check_vertex(u)
        return iter(self._adj[u].items())

    def degree(self, u: int) -> float:
        """Weighted degree ``d(u)`` — the sum of incident edge weights."""
        self._check_vertex(u)
        return sum(self._adj[u].values())

    def unweighted_degree(self, u: int) -> int:
        """Number of distinct neighbours of ``u``."""
        self._check_vertex(u)
        return len(self._adj[u])

    def degrees(self) -> List[float]:
        """Weighted degrees of all vertices, indexed by vertex."""
        return [sum(nbrs.values()) for nbrs in self._adj]

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over edges once each as ``(u, v, weight)`` with u < v."""
        for u, nbrs in enumerate(self._adj):
            for v, w in nbrs.items():
                if u < v:
                    yield (u, v, w)

    # ------------------------------------------------------------------
    # CSR adjacency cache
    # ------------------------------------------------------------------
    def set_csr_arrays(self, indptr, indices, data) -> None:
        """Install canonical CSR adjacency arrays built elsewhere.

        The caller guarantees the triple describes exactly this graph's
        symmetric adjacency with sorted column indices per row.  Bulk
        builders use this to hand downstream consumers (Laplacian
        assembly, vectorised König classification) zero-copy arrays.
        """
        self._csr_cache = (indptr, indices, data)

    def csr_arrays(self):
        """The cached ``(indptr, indices, data)`` triple, building it
        from the adjacency lists on first use.

        Requires numpy; rows are complete and columns sorted, so the
        triple is a canonical scipy CSR pattern.  Invalidated by
        :meth:`add_edge`.
        """
        if self._csr_cache is None:
            import numpy as np

            n = self.num_vertices
            counts = np.fromiter(
                (len(nbrs) for nbrs in self._adj),
                dtype=np.int64,
                count=n,
            )
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            nnz = int(indptr[-1])
            indices = np.empty(nnz, dtype=np.int64)
            data = np.empty(nnz, dtype=np.float64)
            pos = 0
            for nbrs in self._adj:
                for v in sorted(nbrs):
                    indices[pos] = v
                    data[pos] = nbrs[v]
                    pos += 1
            self._csr_cache = (indptr, indices, data)
        return self._csr_cache

    # ------------------------------------------------------------------
    # Subgraphs
    # ------------------------------------------------------------------
    def induced_subgraph(
        self, vertices: Sequence[int]
    ) -> Tuple["Graph", List[int]]:
        """Restrict to a vertex subset; returns (subgraph, new->old map)."""
        vertex_list = sorted(set(int(v) for v in vertices))
        for v in vertex_list:
            self._check_vertex(v)
        old_to_new = {old: new for new, old in enumerate(vertex_list)}
        sub = Graph(len(vertex_list))
        for old_u in vertex_list:
            for old_v, w in self._adj[old_u].items():
                if old_u < old_v and old_v in old_to_new:
                    sub.add_edge(old_to_new[old_u], old_to_new[old_v], w)
        return sub, vertex_list

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_vertex(self, u: int) -> None:
        if not 0 <= u < len(self._adj):
            raise GraphError(
                f"vertex {u} out of range (have {len(self._adj)} vertices)"
            )

    def __repr__(self) -> str:
        return (
            f"<Graph: {self.num_vertices} vertices, "
            f"{self.num_edges} edges, total weight "
            f"{self._total_weight:.4g}>"
        )
