"""Matrix assembly: adjacency ``A``, degree ``D`` and Laplacian ``Q = D - A``.

These are the matrices of Section 1.1 of the paper.  All are returned as
scipy sparse matrices suitable for the Lanczos / eigsh solvers in
:mod:`repro.spectral`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np
import scipy.sparse as sp

from ..core import csr_active

if TYPE_CHECKING:  # pragma: no cover
    from .graph import Graph

__all__ = [
    "adjacency_matrix",
    "degree_matrix",
    "laplacian_matrix",
    "negated_laplacian",
]


def adjacency_matrix(g: "Graph") -> sp.csr_matrix:
    """The symmetric weighted adjacency matrix ``A`` of ``g`` (CSR).

    When the graph carries cached CSR adjacency arrays (installed by
    the CSR-core intersection build, or built on demand under the csr
    core), the matrix is assembled directly from them — no COO
    intermediate, no per-edge Python loop.  Both paths produce the
    same canonical matrix: rows complete, columns sorted, identical
    float64 values.
    """
    n = g.num_vertices
    if g._csr_cache is not None or csr_active():
        indptr, indices, data = g.csr_arrays()
        return sp.csr_matrix(
            (data, indices, indptr), shape=(n, n), copy=False
        )
    rows = []
    cols = []
    vals = []
    for u, v, w in g.edges():
        rows.append(u)
        cols.append(v)
        vals.append(w)
        rows.append(v)
        cols.append(u)
        vals.append(w)
    return sp.csr_matrix(
        (np.asarray(vals, dtype=float), (rows, cols)), shape=(n, n)
    )


def degree_matrix(g: "Graph") -> sp.csr_matrix:
    """The diagonal matrix ``D`` with ``D_ii = d(v_i)`` (CSR)."""
    return sp.diags(
        np.asarray(g.degrees(), dtype=float), format="csr"
    )


def laplacian_matrix(g: "Graph") -> sp.csr_matrix:
    """The Laplacian ``Q = D - A`` used throughout the paper.

    ``Q`` is symmetric positive semidefinite; its smallest eigenvalue is 0
    with eigenvector ``(1, 1, ..., 1)/sqrt(n)``, and its second-smallest
    eigenvalue bounds the optimal ratio cut from below (Theorem 1).
    """
    return (degree_matrix(g) - adjacency_matrix(g)).tocsr()


def negated_laplacian(g: "Graph") -> sp.csr_matrix:
    """``-Q = A - D``, whose *largest* eigenvalues the Lanczos code targets.

    The paper computes the second-largest eigenpair of ``A - D`` because
    Kaniel–Paige–Saad theory shows Lanczos converges faster to extreme
    (largest) eigenvalues; negating gives the second-smallest pair of
    ``Q``.
    """
    return (adjacency_matrix(g) - degree_matrix(g)).tocsr()
