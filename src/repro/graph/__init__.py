"""Sparse weighted graph substrate.

The graph representation shared by the net-model expansions of the netlist
hypergraph and by the intersection graph, together with matrix assembly
(adjacency, degree, Laplacian) and traversal utilities.
"""

from .convert import from_networkx, from_scipy_sparse, to_networkx
from .graph import Graph
from .laplacian import (
    adjacency_matrix,
    degree_matrix,
    laplacian_matrix,
    negated_laplacian,
)
from .traversal import (
    approximate_diameter,
    bfs_distances,
    bfs_order,
    connected_components,
    eccentricity,
    is_connected,
)

__all__ = [
    "Graph",
    "adjacency_matrix",
    "approximate_diameter",
    "bfs_distances",
    "bfs_order",
    "connected_components",
    "degree_matrix",
    "eccentricity",
    "from_networkx",
    "from_scipy_sparse",
    "is_connected",
    "laplacian_matrix",
    "negated_laplacian",
    "to_networkx",
]
