"""Conversions between :class:`~repro.graph.Graph` and external libraries.

networkx is an optional test/interop dependency; the import is deferred so
the core library works without it.
"""

from __future__ import annotations


import scipy.sparse as sp

from ..errors import GraphError
from .graph import Graph

__all__ = ["from_scipy_sparse", "to_networkx", "from_networkx"]


def from_scipy_sparse(matrix: sp.spmatrix) -> Graph:
    """Build a :class:`Graph` from a symmetric sparse adjacency matrix.

    The diagonal is ignored (``A_ii = 0`` convention); asymmetric input is
    rejected.
    """
    matrix = sp.coo_matrix(matrix)
    if matrix.shape[0] != matrix.shape[1]:
        raise GraphError(f"adjacency matrix must be square, got {matrix.shape}")
    asymmetry = abs(matrix - matrix.T)
    if asymmetry.nnz and asymmetry.max() > 1e-12:
        raise GraphError("adjacency matrix must be symmetric")
    g = Graph(matrix.shape[0])
    for u, v, w in zip(matrix.row, matrix.col, matrix.data):
        if u < v and w != 0:
            g.add_edge(int(u), int(v), float(w))
    return g


def to_networkx(g: Graph):
    """Convert to a ``networkx.Graph`` with ``weight`` edge attributes."""
    import networkx as nx

    out = nx.Graph()
    out.add_nodes_from(range(g.num_vertices))
    out.add_weighted_edges_from(g.edges())
    return out


def from_networkx(nxg) -> Graph:
    """Convert a ``networkx.Graph`` with integer nodes ``0..n-1``.

    Missing ``weight`` attributes default to 1.0.
    """
    nodes = sorted(nxg.nodes())
    if nodes != list(range(len(nodes))):
        raise GraphError(
            "networkx graph must be labelled with integers 0..n-1; "
            "relabel with networkx.convert_node_labels_to_integers first"
        )
    g = Graph(len(nodes))
    for u, v, data in nxg.edges(data=True):
        g.add_edge(int(u), int(v), float(data.get("weight", 1.0)))
    return g
