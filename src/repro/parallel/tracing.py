"""Per-worker observability capture and deterministic merging.

The executor keeps :mod:`repro.obs` correct under parallelism by giving
every worker task its own private trace and folding the results back
into the parent's trace in *submission order* — never pool-completion
order — so a profiled parallel run records the same deterministic data
as the serial run.

A worker runs its task inside :func:`capture_fragment`: a fresh
:func:`repro.obs.isolated` state is enabled with an in-memory sink, the
task executes, and everything it recorded is serialised into a plain
``dict`` *fragment*::

    {"counters": {...},          # counter name -> total
     "spans":    [node, ...],    # phase tree as nested dicts
     "events":   [event, ...]}   # raw span/point events

Fragments are picklable, so they cross process boundaries unchanged.

The parent calls :func:`merge_fragment` once per task, in submission
order: counters are summed into the parent's counters, the span tree is
grafted under the parent's currently open span (so ``phase_report`` and
``flatten_totals`` see identical structure to a serial run), and events
are re-emitted to the parent's sinks with re-assigned sequence numbers
and depth offsets.  Only wall-clock interleaving differs from a serial
trace; every deterministic field (names, counts, counters, attributes)
is preserved.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

__all__ = ["capture_fragment", "merge_fragment"]

Fragment = Dict[str, Any]


def capture_fragment(
    fn: Callable[..., Any], *args: Any, memprof: bool = False, **kwargs: Any
) -> Tuple[Any, Fragment]:
    """Run ``fn`` with a private, enabled obs state; return its result
    and the serialisable trace fragment it recorded.

    ``memprof=True`` (keyword-only, not forwarded to ``fn``) turns on
    per-span memory attribution inside the capture, so worker fragments
    carry ``mem_alloc_bytes`` / ``mem_peak_bytes`` span attributes when
    the submitting context was memory-profiling.  The flag tears down
    with the capture's obs state, stopping tracemalloc in the worker.
    """
    from .. import obs
    from ..obs.trace import span_node_to_dict

    sink = obs.MemorySink()
    with obs.isolated() as state:
        with obs.enabled(sink=sink):
            if memprof:
                from ..obs.memprof import enable_memprof

                enable_memprof()
            result = fn(*args, **kwargs)
            counters = obs.counters()
            spans = [span_node_to_dict(node) for node in state.roots]
    # The trailing {"type": "counters"} event emitted by disable() is
    # dropped: the parent's own shutdown emits the merged totals.
    events = [e for e in sink.events if e.get("type") != "counters"]
    return result, {"counters": counters, "spans": spans, "events": events}


def merge_fragment(fragment: Optional[Fragment]) -> None:
    """Fold one worker's trace fragment into the parent's obs state.

    No-op when ``fragment`` is ``None`` or parent instrumentation is
    off.  Must be called in task submission order for deterministic
    sequence numbering.  (Thin wrapper over
    :func:`repro.obs.trace.merge_into_current`, the one shared
    implementation of fragment folding.)
    """
    from ..obs.trace import merge_into_current

    merge_into_current(fragment)
