"""Deterministic parallel mapping for embarrassingly parallel fan-outs.

:func:`pmap` / :func:`pstarmap` run a module-level function over a task
list on one of three backends — ``serial`` (inline), ``thread``
(:class:`~concurrent.futures.ThreadPoolExecutor`), or ``process``
(:class:`~concurrent.futures.ProcessPoolExecutor`) — with results that
are **bit-identical to a serial run** regardless of backend, worker
count, or pool scheduling order.  Three rules make that hold:

1. *No shared randomness.*  Tasks never draw from a shared RNG stream;
   callers derive one independent seed per task up front with
   :func:`spawn_seeds` (a hash of ``(master_seed, task_index)``), so a
   task's randomness depends only on its index — not on how many tasks
   run, on which worker, or in which order.
2. *Submission-order reduction.*  Results (and worker trace fragments)
   are consumed in the order tasks were submitted, never in completion
   order, so reductions like "best of N, first wins ties" are stable.
3. *Isolated observability.*  When the parent is profiling, each task
   records into a private :mod:`repro.obs` state and returns a
   serialisable fragment that the parent merges in submission order
   (see :mod:`repro.parallel.tracing`).

Worker exceptions propagate to the caller as the *original* exception
object (first failing task in submission order), with the task context
attached as a ``__notes__`` entry on Python 3.11+ and the remote
traceback preserved on the ``worker_traceback`` attribute.

Pools are cached per ``(backend, workers)`` and reused across calls, so
repeated small fan-outs (e.g. one per hypothesis example) amortise pool
start-up.  Nested fan-outs are suppressed: a ``pmap`` issued from inside
a worker runs serially inline, so configuring both an outer and an
inner loop for parallelism cannot oversubscribe or deadlock the pools.

``REPRO_WORKERS`` / ``REPRO_BACKEND`` provide process-wide defaults for
call sites that do not pass an explicit :class:`ParallelConfig` — the
hook the CI parallel job and the CLI ``--workers`` / ``--backend``
flags build on.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ReproError
from .tracing import capture_fragment, merge_fragment

__all__ = [
    "BACKENDS",
    "ParallelConfig",
    "ParallelError",
    "pmap",
    "pstarmap",
    "resolve_parallel",
    "shutdown_executors",
    "spawn_seeds",
]

BACKENDS = ("serial", "thread", "process")


class ParallelError(ReproError):
    """A worker failure that could not be propagated verbatim (e.g. an
    unpicklable exception raised in a process worker)."""


@dataclass(frozen=True)
class ParallelConfig:
    """How to run a deterministic fan-out.

    ``workers`` is the pool size; ``0`` means auto-detect
    (``os.cpu_count()``), and any value below 2 degrades to inline
    serial execution.  ``backend`` is one of :data:`BACKENDS`:
    ``thread`` suits tasks that release the GIL (NumPy/SciPy solves),
    ``process`` suits pure-Python tasks (FM passes, restarts) at the
    price of pickling the task arguments.  Results are identical across
    all three — the backend only changes wall-clock time.
    """

    workers: int = 1
    backend: str = "serial"

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ReproError(
                f"unknown parallel backend {self.backend!r} "
                f"(choose from {', '.join(BACKENDS)})"
            )
        if self.workers < 0:
            raise ReproError(
                f"workers must be >= 0 (0 = auto), got {self.workers}"
            )

    def effective_workers(self) -> int:
        """The concrete pool size (resolving ``workers=0`` to the CPU
        count, and the serial backend to 1)."""
        if self.backend == "serial":
            return 1
        if self.workers == 0:
            return os.cpu_count() or 1
        return self.workers


def resolve_parallel(
    workers: Optional[int] = None, backend: Optional[str] = None
) -> ParallelConfig:
    """Build a :class:`ParallelConfig` from explicit values and the
    ``REPRO_WORKERS`` / ``REPRO_BACKEND`` environment defaults.

    Precedence per field: explicit argument, then environment variable,
    then default (1 worker; ``process`` when more than one worker is
    requested, else ``serial``).  Malformed ``REPRO_WORKERS`` values
    raise :class:`ReproError` rather than silently running serial.
    """
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ReproError(
                    f"REPRO_WORKERS must be an integer, got {raw!r}"
                ) from None
        else:
            workers = 1
    if backend is None:
        backend = os.environ.get("REPRO_BACKEND", "").strip() or None
    if backend is None:
        backend = "process" if workers != 1 else "serial"
    return ParallelConfig(workers=workers, backend=backend)


def spawn_seeds(seed: int, count: int) -> List[int]:
    """``count`` independent 63-bit child seeds derived from ``seed``.

    Child ``i`` depends only on ``(seed, i)`` — computed by SHA-256, so
    the derivation is identical across platforms, processes, and Python
    hash randomisation.  Extending a fan-out (``count`` -> ``count+1``)
    leaves all earlier seeds unchanged, and no worker ever touches a
    shared RNG stream.
    """
    if count < 0:
        raise ReproError(f"cannot spawn {count} seeds")
    return [_spawn_seed(seed, index) for index in range(count)]


def _spawn_seed(seed: int, index: int) -> int:
    digest = hashlib.sha256(
        f"repro.parallel:{seed}:{index}".encode("ascii")
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


# ----------------------------------------------------------------------
# Worker bookkeeping: nested fan-outs degrade to inline serial runs.
_IS_PROCESS_WORKER = False
_thread_worker = threading.local()


def _mark_process_worker() -> None:
    global _IS_PROCESS_WORKER
    _IS_PROCESS_WORKER = True


def _mark_thread_worker() -> None:
    _thread_worker.active = True


def _in_worker() -> bool:
    return _IS_PROCESS_WORKER or getattr(_thread_worker, "active", False)


# Pools are cached per (backend, workers) and reused; ProcessPool
# workers are long-lived, which also amortises module imports.
_EXECUTORS: Dict[Tuple[str, int], Any] = {}
_EXECUTORS_LOCK = threading.Lock()


def _get_executor(backend: str, workers: int):
    key = (backend, workers)
    with _EXECUTORS_LOCK:
        executor = _EXECUTORS.get(key)
        if executor is None:
            if backend == "thread":
                executor = ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix="repro-parallel",
                    initializer=_mark_thread_worker,
                )
            else:
                executor = ProcessPoolExecutor(
                    max_workers=workers, initializer=_mark_process_worker
                )
            _EXECUTORS[key] = executor
    return executor


def shutdown_executors() -> None:
    """Shut down and drop every cached pool (mainly for tests)."""
    with _EXECUTORS_LOCK:
        executors = list(_EXECUTORS.values())
        _EXECUTORS.clear()
    for executor in executors:
        executor.shutdown(wait=True)


# ----------------------------------------------------------------------
def _invoke(payload: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Run one task in a worker; never raises.

    Returns ``("ok", result, fragment)`` or ``("error", exc, tb_text)``.
    ``needs_pickle`` marks process-backend tasks, whose outcome must
    survive pickling back to the parent.  ``memprof`` carries the
    submitting context's memory-attribution flag into the worker.
    """
    fn, args, capture, needs_pickle, memprof = payload
    try:
        if capture:
            result, fragment = capture_fragment(fn, *args, memprof=memprof)
        else:
            result, fragment = fn(*args), None
        return ("ok", result, fragment)
    except Exception as exc:  # noqa: BLE001 — reported to the parent
        tb_text = traceback.format_exc()
        if needs_pickle:
            try:
                pickle.loads(pickle.dumps(exc))
            except Exception:
                exc = ParallelError(
                    f"worker task raised an unpicklable "
                    f"{type(exc).__name__}: {exc}"
                )
        return ("error", exc, tb_text)


def _raise_task_error(
    exc: BaseException, tb_text: str, index: int, total: int, label: str
) -> None:
    context = f"parallel task {index + 1}/{total} ({label})"
    exc.worker_traceback = tb_text  # type: ignore[attr-defined]
    add_note = getattr(exc, "add_note", None)
    if add_note is not None:  # Python 3.11+
        add_note(f"raised in {context}")
    raise exc


def _run(
    fn: Callable[..., Any],
    argtuples: Sequence[Tuple[Any, ...]],
    config: Optional[ParallelConfig],
    label: str,
) -> List[Any]:
    if config is None:
        config = resolve_parallel()
    tasks = [tuple(args) for args in argtuples]
    total = len(tasks)
    if total == 0:
        return []
    workers = min(config.effective_workers(), total)
    if workers <= 1 or _in_worker():
        # Inline in the caller's context: tracing needs no capture
        # dance, and nested fan-outs cannot oversubscribe the pools.
        results = []
        for index, args in enumerate(tasks):
            try:
                results.append(fn(*args))
            except Exception as exc:
                _raise_task_error(
                    exc, traceback.format_exc(), index, total, label
                )
        return results

    from .. import obs

    capture = obs.is_enabled()
    memprof = capture and obs.STATE.memprof
    needs_pickle = config.backend == "process"
    executor = _get_executor(config.backend, config.effective_workers())
    futures = [
        executor.submit(_invoke, (fn, args, capture, needs_pickle, memprof))
        for args in tasks
    ]
    # Reduce strictly in submission order — both results and trace
    # fragments — so parallel runs are indistinguishable from serial
    # ones in every deterministic field.
    outcomes = [future.result() for future in futures]
    results: List[Any] = []
    for index, outcome in enumerate(outcomes):
        if outcome[0] == "ok":
            _, result, fragment = outcome
            if capture:
                merge_fragment(fragment)
            results.append(result)
        else:
            _, exc, tb_text = outcome
            _raise_task_error(exc, tb_text, index, total, label)
    return results


def pmap(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    config: Optional[ParallelConfig] = None,
    *,
    label: str = "pmap",
) -> List[Any]:
    """``[fn(item) for item in items]``, fanned out deterministically.

    ``fn`` must be a module-level callable and ``items`` picklable when
    the process backend is in play.  ``config=None`` resolves from the
    ``REPRO_WORKERS`` / ``REPRO_BACKEND`` environment.  ``label`` names
    the fan-out in propagated error context.
    """
    return _run(fn, [(item,) for item in items], config, label)


def pstarmap(
    fn: Callable[..., Any],
    argtuples: Iterable[Tuple[Any, ...]],
    config: Optional[ParallelConfig] = None,
    *,
    label: str = "pstarmap",
) -> List[Any]:
    """``[fn(*args) for args in argtuples]``, fanned out like
    :func:`pmap`."""
    return _run(fn, list(argtuples), config, label)
