"""repro.parallel — deterministic fan-out over threads or processes.

The executor layer behind the pipeline's embarrassingly parallel loops:
RCut random restarts, FM multi-start refinement, IG-Match candidate
orderings, and the benchmark suite's per-circuit runs.  The contract is
strict determinism: for a fixed master seed, results are bit-identical
across the ``serial``, ``thread``, and ``process`` backends and any
worker count, because per-task seeds are spawned up front
(:func:`spawn_seeds`), reductions happen in submission order, and each
worker's observability trace is captured privately and merged
deterministically.  See ``docs/parallel.md`` for the full contract and
backend trade-offs.
"""

from .executor import (
    BACKENDS,
    ParallelConfig,
    ParallelError,
    pmap,
    pstarmap,
    resolve_parallel,
    shutdown_executors,
    spawn_seeds,
)
from .tracing import capture_fragment, merge_fragment

__all__ = [
    "BACKENDS",
    "ParallelConfig",
    "ParallelError",
    "capture_fragment",
    "merge_fragment",
    "pmap",
    "pstarmap",
    "resolve_parallel",
    "shutdown_executors",
    "spawn_seeds",
]
