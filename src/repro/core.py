"""Runtime selection of the hypergraph core representation.

Two cores exist:

* ``"dict"`` — the original object representation: :class:`Hypergraph`
  tuples-of-tuples, dict-of-dict :class:`repro.graph.Graph`, Python
  loops in the hot paths.  The reference implementation.
* ``"csr"`` — the same algorithms fed from flat CSR incidence arrays
  (:class:`repro.hypergraph.CsrHypergraph`): vectorised
  intersection-graph construction, Laplacian assembly from cached CSR
  arrays, numpy König classification, and bincount-based FM gain
  initialisation.

The two are **bit-identical by contract** — every partitioner returns
the same assignment, ``nets_cut``, ``ratio_cut``, details, and
``canonical_result_bytes`` under either core, enforced by
``tests/test_core_equivalence.py``.  The switch therefore only selects
a performance profile, never a result, and cache entries are shared
across cores.

Resolution precedence (first match wins):

1. an explicit argument (``run_partitioner(..., core=...)``,
   ``PartitionEngine(core=...)``);
2. a process-wide override installed with :func:`set_core` /
   :func:`use_core` (what ``--core`` sets);
3. the ``REPRO_CORE`` environment variable;
4. the default, ``"dict"``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from .errors import ReproError

__all__ = [
    "CORES",
    "DEFAULT_CORE",
    "csr_active",
    "get_core",
    "resolve_core",
    "set_core",
    "use_core",
]

CORES = ("dict", "csr")
DEFAULT_CORE = "dict"
_ENV_VAR = "REPRO_CORE"

# The process-wide override (None = fall through to the environment).
_active: Optional[str] = None


def _normalise(value: object, origin: str) -> str:
    name = str(value).strip().lower()
    if name not in CORES:
        raise ReproError(
            f"unknown core {value!r} from {origin}; "
            f"choose one of: {', '.join(CORES)}"
        )
    return name


def resolve_core(explicit: Optional[str] = None) -> str:
    """The active core name, honouring the precedence chain above."""
    if explicit is not None:
        return _normalise(explicit, "explicit argument")
    if _active is not None:
        return _active
    env = os.environ.get(_ENV_VAR, "").strip()
    if env:
        return _normalise(env, f"${_ENV_VAR}")
    return DEFAULT_CORE


def get_core() -> str:
    """The core currently in effect (no explicit argument)."""
    return resolve_core()


def csr_active() -> bool:
    """True when the CSR core is in effect."""
    return resolve_core() == "csr"


def set_core(core: Optional[str]) -> Optional[str]:
    """Install (or with ``None``, clear) the process-wide override.

    Returns the previous override so callers can restore it.
    """
    global _active
    previous = _active
    _active = None if core is None else _normalise(core, "set_core()")
    return previous


@contextmanager
def use_core(core: Optional[str]) -> Iterator[str]:
    """Scope a core override to a ``with`` block (restores on exit)."""
    previous = set_core(core)
    try:
        yield get_core()
    finally:
        global _active
        _active = previous
