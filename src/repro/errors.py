"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch one base class.  Specific subclasses distinguish input
problems (bad netlists, malformed files) from algorithmic failures
(eigensolver non-convergence, infeasible partitions).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class HypergraphError(ReproError):
    """Invalid hypergraph structure or an operation on a missing element."""


class ValidationError(HypergraphError):
    """A hypergraph failed structural validation."""


class ParseError(ReproError):
    """A netlist file could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class GraphError(ReproError):
    """Invalid graph structure or an operation on a missing vertex/edge."""


class SpectralError(ReproError):
    """An eigensolver failed to converge or the matrix was unsuitable."""


class MatchingError(ReproError):
    """Inconsistent state in a bipartite matching computation."""


class PartitionError(ReproError):
    """An infeasible or inconsistent partition was requested or produced."""


class BenchmarkError(ReproError):
    """A benchmark specification could not be realised."""


class DeltaError(ReproError):
    """A netlist delta is malformed or inconsistent with its base."""
