"""repro — intersection-graph spectral ratio-cut partitioning.

A full reproduction of J. Cong, L. Hagen and A. Kahng, *Net Partitions
Yield Better Module Partitions* (UCLA CSD-910075 / DAC 1992): the
IG-Match algorithm, its IG-Vote / EIG1 / RCut / FM / KL baselines, the
netlist-hypergraph and intersection-graph substrates, a Lanczos spectral
engine, and a synthetic MCNC-style benchmark suite.

Quickstart
----------
>>> from repro import generate_hierarchical, ig_match
>>> h = generate_hierarchical(num_modules=200, num_nets=220,
...                           natural_fraction=0.3, crossing_nets=4,
...                           seed=1)
>>> result = ig_match(h)
>>> result.nets_cut <= 10
True
"""

from .bench import (
    BENCHMARKS,
    BenchmarkSpec,
    build_circuit,
    build_suite,
    generate_from_spec,
    generate_hierarchical,
    get_spec,
    spec_names,
)
from . import obs
from .clustering import MultilevelConfig, multilevel_partition
from .core import CORES, get_core, resolve_core, set_core, use_core
from .errors import (
    BenchmarkError,
    GraphError,
    HypergraphError,
    MatchingError,
    ParseError,
    PartitionError,
    ReproError,
    SpectralError,
    ValidationError,
)
from .graph import Graph, laplacian_matrix
from .hypergraph import (
    CsrHypergraph,
    Hypergraph,
    HypergraphBuilder,
    describe,
    load_json,
    load_net,
    save_json,
    save_net,
)
from .intersection import intersection_graph, intersection_nonzeros
from .netmodels import available_models, get_model
from .partitioning import (
    AnnealingConfig,
    EIG1Config,
    FMConfig,
    IGMatchConfig,
    IGVoteConfig,
    KLConfig,
    MultiwayResult,
    Partition,
    PartitionResult,
    RCutConfig,
    anneal,
    eig1,
    fm_bipartition,
    ig_match,
    ig_vote,
    kl_bisection,
    rcut,
    recursive_partition,
    refine,
)
from .placement import MincutPlacement, hpwl, mincut_placement
from .spectral import fiedler_vector, lanczos_extreme, spectral_ordering
from . import service

__version__ = "1.0.0"

__all__ = [
    "AnnealingConfig",
    "BENCHMARKS",
    "BenchmarkError",
    "BenchmarkSpec",
    "EIG1Config",
    "FMConfig",
    "Graph",
    "GraphError",
    "Hypergraph",
    "HypergraphBuilder",
    "HypergraphError",
    "IGMatchConfig",
    "IGVoteConfig",
    "KLConfig",
    "MatchingError",
    "MincutPlacement",
    "MultilevelConfig",
    "MultiwayResult",
    "ParseError",
    "Partition",
    "PartitionError",
    "PartitionResult",
    "RCutConfig",
    "ReproError",
    "SpectralError",
    "ValidationError",
    "anneal",
    "available_models",
    "build_circuit",
    "build_suite",
    "describe",
    "eig1",
    "fiedler_vector",
    "fm_bipartition",
    "generate_from_spec",
    "generate_hierarchical",
    "get_model",
    "get_spec",
    "hpwl",
    "ig_match",
    "ig_vote",
    "intersection_graph",
    "intersection_nonzeros",
    "kl_bisection",
    "lanczos_extreme",
    "laplacian_matrix",
    "load_json",
    "load_net",
    "mincut_placement",
    "multilevel_partition",
    "obs",
    "rcut",
    "recursive_partition",
    "refine",
    "save_json",
    "save_net",
    "service",
    "spec_names",
    "spectral_ordering",
    "__version__",
]
