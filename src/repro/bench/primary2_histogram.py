"""The Primary2 net-size histogram from Table 1 of the paper.

Table 1 reports, for a locally-minimum ratio-cut partition of MCNC
Primary2, the number of k-pin nets and how many were cut, for every
occurring net size k.  The "Number of Nets" column doubles as the exact
net-size distribution of Primary2, which the synthetic Prim2 stand-in
reproduces verbatim; the "Number Cut" column is the paper-side data for
experiment E1 (non-monotone cut probability).
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "PRIMARY2_NET_SIZE_HISTOGRAM",
    "PRIMARY2_CUT_HISTOGRAM",
    "PRIMARY2_NUM_NETS",
]

#: net size -> number of nets of that size (Table 1, column 2).
PRIMARY2_NET_SIZE_HISTOGRAM: Dict[int, int] = {
    2: 1835,
    3: 365,
    4: 203,
    5: 192,
    6: 120,
    7: 52,
    8: 14,
    9: 83,
    10: 14,
    11: 35,
    12: 5,
    13: 3,
    14: 10,
    15: 3,
    16: 1,
    17: 72,
    18: 1,
    23: 1,
    26: 1,
    29: 1,
    30: 1,
    31: 1,
    33: 14,
    34: 1,
    37: 1,
}

#: net size -> number cut in the paper's optimised partition (column 3).
PRIMARY2_CUT_HISTOGRAM: Dict[int, int] = {
    2: 21,
    3: 29,
    4: 18,
    5: 26,
    6: 5,
    7: 12,
    8: 0,
    9: 5,
    10: 1,
    11: 0,
    12: 0,
    13: 0,
    14: 0,
    15: 0,
    16: 0,
    17: 22,
    18: 1,
    23: 0,
    26: 1,
    29: 0,
    30: 0,
    31: 0,
    33: 4,
    34: 0,
    37: 0,
}

PRIMARY2_NUM_NETS: int = sum(PRIMARY2_NET_SIZE_HISTOGRAM.values())
