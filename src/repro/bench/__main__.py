"""``python -m repro.bench`` — run and diff the observed benchmark suite.

Partitions every (or each named) suite circuit with the observability
layer on and writes ``BENCH_obs.json``: per-circuit wall time, phase
timing totals, counters, and convergence curves.  This file is the
machine-readable perf trajectory that optimisation PRs compare against:
``--compare BASELINE`` diffs the fresh run against a stored payload
(exact on deterministic work counters and cut quality, noise-aware on
wall clocks), ``--fail-on-regress`` turns deterministic regressions
into a nonzero exit for CI, and ``--report`` renders a self-contained
HTML report (phase trees, convergence curves, verdict tables).

Examples
--------
::

    python -m repro.bench --scale 0.1                 # quick pass
    python -m repro.bench Test05 Prim1 --out BENCH_obs.json
    python -m repro.bench --algorithm rcut --scale 0.2
    python -m repro.bench --scale 0.2 --workers 4     # parallel circuits
    python -m repro.bench --list                      # known circuits
    python -m repro.bench --scale 0.2 \\
        --compare benchmarks/results/BENCH_baseline.json \\
        --fail-on-regress --report bench-report.html
    python -m repro.bench --scale-curve \\
        --compare benchmarks/results/BENCH_scale.json \\
        --fail-on-regress --report scale-report.html

``--scale-curve`` switches to the complexity-exponent mode: one circuit
is swept over a geometric size ladder, wall time and peak heap are
fitted as power laws of the module count, and ``--fail-on-regress``
gates on *exponent* drift (machine-speed independent) rather than raw
seconds.  See :mod:`repro.bench.scale_curve` and ``docs/scaling.md``.
"""

from __future__ import annotations

import argparse
import difflib
import json
import os
import sys
from pathlib import Path
from typing import Optional, Sequence

from ..core import CORES, set_core
from ..errors import ReproError
from ..parallel import BACKENDS, resolve_parallel
from .specs import BENCHMARKS, spec_names
from .suite import run_observed_suite

#: Exit codes: 0 success, 1 regression gate tripped, 2 bad invocation.
EXIT_OK = 0
EXIT_REGRESSED = 1
EXIT_USAGE = 2


def _print_spec_list() -> None:
    print(f"{'name':>8}  {'modules':>8}  {'nets':>8}  paper best (IG-Match)")
    for spec in BENCHMARKS:
        row = spec.paper_igmatch
        best = (
            f"{row.nets_cut} cut @ {row.areas} (ratio {row.ratio_cut:.3g})"
            if row is not None
            else "—"
        )
        print(
            f"{spec.name:>8}  {spec.num_modules:>8}  "
            f"{spec.num_nets:>8}  {best}"
        )


#: BENCH_obs.json schema versions :func:`repro.obs.diff.diff_payloads`
#: understands (1 = no spans/curves, 2 = current).
_KNOWN_SCHEMAS = (1, 2)


def _load_baseline(path: str):
    """Read and validate a ``--compare`` baseline payload.

    Returns ``(payload, None)`` on success, ``(None, message)`` when the
    file is missing, unreadable, not a JSON object, or carries an
    unknown ``schema`` version — every failure is one clear line, never
    a traceback.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return None, f"cannot read baseline {path}: {exc}"
    if not isinstance(payload, dict):
        return None, (
            f"baseline {path} is not a benchmark payload "
            f"(expected a JSON object, got {type(payload).__name__})"
        )
    schema = payload.get("schema")
    if schema not in _KNOWN_SCHEMAS:
        known = ", ".join(str(s) for s in _KNOWN_SCHEMAS)
        return None, (
            f"baseline {path} has unknown schema version {schema!r} "
            f"(known versions: {known}; re-run python -m repro.bench "
            f"to regenerate it)"
        )
    return payload, None


def _validate_names(names: Sequence[str]) -> Optional[str]:
    """Return an error message for the first unknown circuit name."""
    known = spec_names()
    lower = {name.lower(): name for name in known}
    for name in names:
        if name.lower() in lower:
            continue
        suggestions = difflib.get_close_matches(
            name.lower(), list(lower), n=3, cutoff=0.4
        )
        hint = (
            " — did you mean "
            + " or ".join(lower[s] for s in suggestions)
            + "?"
            if suggestions
            else ""
        )
        return (
            f"unknown circuit {name!r}{hint} "
            f"(known: {', '.join(known)}; see --list)"
        )
    return None


def _run_cache_scenario(args) -> int:
    """Handle ``--cache-scenario``: one cold serve, one warm serve."""
    from .cache_scenario import run_cache_scenario

    names = args.names or ["Test05"]
    if len(names) != 1:
        print(
            "error: --cache-scenario takes exactly one circuit name",
            file=sys.stderr,
        )
        return EXIT_USAGE
    error = _validate_names(names)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    try:
        record = run_cache_scenario(
            names[0],
            seed=args.seed,
            scale=args.scale,
            algorithm=args.algorithm,
        )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    speedup = record["speedup"]
    print(
        f"{record['circuit']:>10}: cold {record['cold_wall_s']:.3f}s "
        f"({record['cold']['source']}), warm "
        f"{record['warm_wall_s']:.3f}s ({record['warm']['source']}"
        f"{', %.0fx' % speedup if speedup else ''})"
    )
    for check, ok in record["verified"].items():
        print(f"  {'PASS' if ok else 'FAIL'}  {check}")
    out = Path(args.out)
    out.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {args.out}", file=sys.stderr)
    return EXIT_OK if record["ok"] else EXIT_REGRESSED


def _run_eco_scenario(args) -> int:
    """Handle ``--eco-scenario``: serve a chain of random ECO deltas
    warm and cold, gate on the speedup floor and cut quality."""
    from .eco_scenario import run_eco_scenario

    names = args.names or ["Test05"]
    if len(names) != 1:
        print(
            "error: --eco-scenario takes exactly one circuit name",
            file=sys.stderr,
        )
        return EXIT_USAGE
    error = _validate_names(names)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    if args.out == "BENCH_obs.json":  # suite default; not a suite payload
        args.out = "BENCH_eco.json"
    try:
        record = run_eco_scenario(
            names[0],
            seed=args.seed,
            scale=args.scale,
            algorithm=args.algorithm,
            deltas=args.eco_deltas,
            delta_seed=args.eco_delta_seed,
            min_speedup=args.eco_min_speedup,
        )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        f"{record['circuit']:>10}: base {record['base']['wall_s']:.3f}s, "
        f"{len(record['edits'])} deltas warm {record['warm_wall_s']:.3f}s "
        f"vs cold {record['cold_wall_s']:.3f}s"
        + (f" ({record['speedup']:.0f}x)" if record["speedup"] else "")
    )
    for edit in record["edits"]:
        print(
            f"  edit {edit['edit']}: warm {edit['warm_wall_s']:.3f}s "
            f"ratio {edit['warm_ratio_cut']:.6g} | cold "
            f"{edit['cold_wall_s']:.3f}s ratio {edit['cold_ratio_cut']:.6g}"
        )
    for check, ok in record["verified"].items():
        print(f"  {'PASS' if ok else 'FAIL'}  {check}")
    out = Path(args.out)
    out.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {args.out}", file=sys.stderr)
    return EXIT_OK if record["ok"] else EXIT_REGRESSED


def _load_scale_baseline(path: str):
    """Read and validate a ``--compare`` BENCH_scale baseline.

    Same contract as :func:`_load_baseline`, but for the scale-curve
    payload shape (``kind: "scale"``)."""
    from .scale_curve import validate_scale_payload

    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return None, f"cannot read baseline {path}: {exc}"
    problems = validate_scale_payload(payload)
    if problems:
        return None, (
            f"baseline {path} is not a scale-curve payload: "
            + "; ".join(problems[:3])
        )
    return payload, None


def _run_scale_curve(args) -> int:
    """Handle ``--scale-curve``: sweep the size ladder, fit complexity
    exponents, and (with ``--compare``) gate on exponent drift."""
    from ..obs import render_scale_html, render_scale_markdown
    from .scale_curve import run_scale_curve

    if args.names:
        print(
            "error: --scale-curve sweeps one circuit; use "
            "--curve-circuit NAME instead of positional names",
            file=sys.stderr,
        )
        return EXIT_USAGE
    error = _validate_names([args.curve_circuit])
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    try:
        scales = [float(s) for s in args.curve_scales.split(",") if s]
    except ValueError:
        print(
            f"error: --curve-scales must be comma-separated floats "
            f"(got {args.curve_scales!r})",
            file=sys.stderr,
        )
        return EXIT_USAGE
    algorithms = [a for a in args.curve_algorithms.split(",") if a]

    baseline = None
    if args.compare:
        baseline, error = _load_scale_baseline(args.compare)
        if error is not None:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_USAGE

    if args.out == "BENCH_obs.json":  # suite default; not a suite payload
        args.out = "BENCH_scale.json"
    try:
        payload = run_scale_curve(
            circuit=args.curve_circuit,
            seed=args.seed,
            scales=scales,
            algorithms=algorithms,
            repeats=args.curve_repeats,
            out_path=args.out,
        )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    diff = None
    if baseline is not None:
        from ..obs import diff_scale_payloads

        diff = diff_scale_payloads(
            baseline, payload, exponent_tol=args.exponent_tolerance
        )
    print(render_scale_markdown(payload, diff=diff))
    print(f"wrote {args.out}", file=sys.stderr)

    if args.report:
        try:
            Path(args.report).write_text(
                render_scale_html(payload, diff=diff), encoding="utf-8"
            )
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"wrote report to {args.report}", file=sys.stderr)

    if diff is not None and args.fail_on_regress and diff.has_regressions:
        print(
            f"FAIL: {len(diff.regressions)} complexity-exponent "
            f"regression(s)",
            file=sys.stderr,
        )
        return EXIT_REGRESSED
    return EXIT_OK


def _run_serving_scenario(args) -> int:
    """Handle ``--serving-scenario``: a short gated load run against a
    private in-process server, with the full client/server cross-check
    and SLO verdicts (writes ``BENCH_serving.json``-shaped output)."""
    from ..loadgen import run_serving_scenario
    from ..loadgen.slo import parse_slo
    from ..obs import render_serving_markdown

    try:
        slo = parse_slo(args.slo) if args.slo else None
        payload, _result = run_serving_scenario(
            duration_s=args.serving_duration,
            concurrency=args.serving_concurrency,
            mix=args.serving_mix,
            seed=args.seed,
            slo=slo,
            scale=min(args.scale, 0.2),
        )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render_serving_markdown(payload))
    if args.out == "BENCH_obs.json":  # suite default; not a serving payload
        args.out = "BENCH_serving.json"
    out = Path(args.out)
    out.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {args.out}", file=sys.stderr)
    ok = payload["crosscheck"]["ok"] and payload["slo"]["ok"] is not False
    return EXIT_OK if ok else EXIT_REGRESSED


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the benchmark suite with observability enabled, "
        "write a machine-readable BENCH_obs.json, and optionally diff it "
        "against a stored baseline.",
    )
    parser.add_argument(
        "names", nargs="*", metavar="NAME",
        help="circuits to run (default: the whole suite; see --list)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="print the known circuit specs and exit",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="size scale factor for generated circuits",
    )
    parser.add_argument(
        "--algorithm", default="ig-match",
        help="partitioner to profile (default ig-match)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run circuits in parallel on N workers (0 = auto-detect "
        "CPUs; default: $REPRO_WORKERS or 1).  Deterministic payload "
        "fields are identical for any worker count",
    )
    parser.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="parallel backend (default: $REPRO_BACKEND, or process "
        "when --workers > 1)",
    )
    parser.add_argument(
        "--memprof", action="store_true",
        help="attribute Python-heap memory to each phase: phase entries "
        "gain mem_alloc_bytes/mem_peak_bytes and circuits gain a mem "
        "snapshot (RSS + tracemalloc watermarks).  Memory fields diff "
        "noise-aware and never trip --fail-on-regress",
    )
    parser.add_argument(
        "--out", metavar="PATH", default="BENCH_obs.json",
        help="output JSON path (default BENCH_obs.json)",
    )
    parser.add_argument(
        "--compare", metavar="BASELINE",
        help="diff the fresh run against a stored BENCH_obs.json "
        "payload and print the verdicts",
    )
    parser.add_argument(
        "--fail-on-regress", action="store_true",
        help="with --compare: exit nonzero when a deterministic field "
        "(counter, phase count, nets_cut, ratio_cut) regressed; "
        "wall-clock changes never trip the gate",
    )
    parser.add_argument(
        "--time-tolerance", type=float, default=0.25, metavar="REL",
        help="relative wall-clock change below which a phase is "
        "'unchanged' (default 0.25)",
    )
    parser.add_argument(
        "--time-floor", type=float, default=0.02, metavar="SECONDS",
        help="absolute wall-clock change always treated as noise "
        "(default 0.02s)",
    )
    parser.add_argument(
        "--report", metavar="PATH",
        help="write a self-contained HTML report (phase trees, "
        "convergence curves, and the diff when --compare is given)",
    )
    parser.add_argument(
        "--cache-scenario", action="store_true",
        help="run the cached-vs-cold serving scenario instead of the "
        "suite: serve one circuit twice through repro.service and "
        "verify the warm request hit the cache and skipped every "
        "compute phase (writes the record to --out)",
    )
    parser.add_argument(
        "--eco-scenario", action="store_true",
        help="run the incremental-partitioning (ECO) scenario instead "
        "of the suite: serve one circuit, chain random netlist deltas "
        "through the warm delta path and a cold recompute per edit, "
        "and gate on warm quality (no worse) and the speedup floor "
        "(writes the record to --out, default BENCH_eco.json)",
    )
    parser.add_argument(
        "--eco-deltas", type=int, default=5, metavar="N",
        help="with --eco-scenario: number of chained edits (default 5)",
    )
    parser.add_argument(
        "--eco-delta-seed", type=int, default=1, metavar="SEED",
        help="with --eco-scenario: RNG seed for the random edits "
        "(default 1)",
    )
    parser.add_argument(
        "--eco-min-speedup", type=float, default=5.0, metavar="X",
        help="with --eco-scenario: minimum warm-vs-cold speedup the "
        "gate accepts (default 5.0)",
    )
    parser.add_argument(
        "--scale-curve", action="store_true",
        help="sweep one circuit over a geometric size ladder instead of "
        "running the suite: fit log-log complexity exponents for wall "
        "time and peak heap per algorithm, write BENCH_scale.json, and "
        "(with --compare/--fail-on-regress) gate on exponent drift",
    )
    parser.add_argument(
        "--curve-circuit", default="Prim2", metavar="NAME",
        help="with --scale-curve: circuit spec to sweep (default Prim2)",
    )
    parser.add_argument(
        "--curve-scales", default="0.05,0.1,0.2,0.4", metavar="S,S,...",
        help="with --scale-curve: size ladder as comma-separated scale "
        "factors (default 0.05,0.1,0.2,0.4)",
    )
    parser.add_argument(
        "--curve-algorithms", default="ig-match,fm", metavar="ALG,...",
        help="with --scale-curve: algorithms to sweep "
        "(default ig-match,fm)",
    )
    parser.add_argument(
        "--curve-repeats", type=int, default=1, metavar="K",
        help="with --scale-curve: runs per rung; keeps min wall time "
        "and max heap peak (default 1)",
    )
    parser.add_argument(
        "--exponent-tolerance", type=float, default=0.2, metavar="TOL",
        help="with --scale-curve --compare: allowed complexity-exponent "
        "growth before the gate trips; widened automatically by the "
        "fits' standard errors (default 0.2)",
    )
    parser.add_argument(
        "--core", choices=CORES, default=None,
        help="hypergraph core representation for every benched run: "
        "dict (reference) or csr (vectorised flat arrays).  Results "
        "are bit-identical either way — only the timings move; "
        "default: $REPRO_CORE or dict",
    )
    parser.add_argument(
        "--serving-scenario", action="store_true",
        help="run a short gated load test instead of the suite: boot a "
        "private in-process server, drive a mixed closed-loop workload "
        "with repro.loadgen, cross-check client records against the "
        "server's /metrics deltas, and evaluate --slo (writes the "
        "BENCH_serving payload to --out)",
    )
    parser.add_argument(
        "--serving-duration", type=float, default=3.0, metavar="SECONDS",
        help="with --serving-scenario: load duration (default 3)",
    )
    parser.add_argument(
        "--serving-concurrency", type=int, default=4, metavar="N",
        help="with --serving-scenario: closed-loop workers (default 4)",
    )
    parser.add_argument(
        "--serving-mix", default="igmatch=0.5,fm=0.3,eig1=0.2",
        metavar="ALG=W,...",
        help="with --serving-scenario: algorithm traffic mix",
    )
    parser.add_argument(
        "--slo", default=None, metavar="OBJ=TARGET,...",
        help="with --serving-scenario: SLO objectives, e.g. "
        "p99=2.0,error_rate=0.01 (failing one exits nonzero)",
    )
    args = parser.parse_args(argv)

    if args.core:
        set_core(args.core)
        os.environ["REPRO_CORE"] = args.core

    if args.list:
        _print_spec_list()
        return EXIT_OK

    if args.cache_scenario:
        return _run_cache_scenario(args)

    if args.eco_scenario:
        return _run_eco_scenario(args)

    if args.scale_curve:
        return _run_scale_curve(args)

    if args.serving_scenario:
        return _run_serving_scenario(args)

    error = _validate_names(args.names)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE

    baseline = None
    if args.compare:
        baseline, error = _load_baseline(args.compare)
        if error is not None:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_USAGE

    try:
        payload = run_observed_suite(
            names=args.names or None,
            seed=args.seed,
            scale=args.scale,
            algorithm=args.algorithm,
            out_path=args.out,
            parallel=resolve_parallel(args.workers, args.backend),
            memprof=args.memprof,
        )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for circuit in payload["circuits"]:
        print(
            f"{circuit['name']:>10}: {circuit['modules']} modules, "
            f"{circuit['nets']} nets, {circuit['nets_cut']} cut, "
            f"{circuit['seconds']:.3f}s"
        )
    print(f"wrote {args.out}", file=sys.stderr)

    diff = None
    if baseline is not None:
        from ..obs import DiffThresholds, diff_payloads, render_markdown

        diff = diff_payloads(
            baseline,
            payload,
            thresholds=DiffThresholds(
                rel_tol=args.time_tolerance,
                abs_floor_s=args.time_floor,
            ),
        )
        print(f"--- compared against {args.compare} ---")
        print(render_markdown(diff))

    if args.report:
        from ..obs import render_html

        try:
            Path(args.report).write_text(
                render_html(payload, diff=diff), encoding="utf-8"
            )
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"wrote report to {args.report}", file=sys.stderr)

    if diff is not None and args.fail_on_regress and diff.has_regressions:
        print(
            f"FAIL: {len(diff.regressions)} deterministic regression(s)",
            file=sys.stderr,
        )
        return EXIT_REGRESSED
    return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
