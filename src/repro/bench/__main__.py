"""``python -m repro.bench`` — run the observed benchmark suite.

Partitions every (or each named) suite circuit with the observability
layer on and writes ``BENCH_obs.json``: per-circuit wall time, phase
timing totals, and counters.  This file is the machine-readable perf
trajectory that optimisation PRs compare against.

Examples
--------
::

    python -m repro.bench --scale 0.1                 # quick pass
    python -m repro.bench Test05 Prim1 --out BENCH_obs.json
    python -m repro.bench --algorithm rcut --scale 0.2
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..errors import ReproError
from .specs import spec_names
from .suite import run_observed_suite


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the benchmark suite with observability enabled "
        "and write a machine-readable BENCH_obs.json.",
    )
    parser.add_argument(
        "names", nargs="*", metavar="NAME",
        help="circuits to run (default: the whole suite; "
        f"known: {', '.join(spec_names())})",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="size scale factor for generated circuits",
    )
    parser.add_argument(
        "--algorithm", default="ig-match",
        help="partitioner to profile (default ig-match)",
    )
    parser.add_argument(
        "--out", metavar="PATH", default="BENCH_obs.json",
        help="output JSON path (default BENCH_obs.json)",
    )
    args = parser.parse_args(argv)

    try:
        payload = run_observed_suite(
            names=args.names or None,
            seed=args.seed,
            scale=args.scale,
            algorithm=args.algorithm,
            out_path=args.out,
        )
    except (ReproError, KeyError, OSError) as exc:
        # get_spec raises KeyError for unknown circuit names.
        if isinstance(exc, KeyError) and exc.args:
            exc = exc.args[0]
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for circuit in payload["circuits"]:
        print(
            f"{circuit['name']:>10}: {circuit['modules']} modules, "
            f"{circuit['nets']} nets, {circuit['nets_cut']} cut, "
            f"{circuit['seconds']:.3f}s"
        )
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
