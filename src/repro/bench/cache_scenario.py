"""Cached-vs-cold serving benchmark scenario.

Measures what the :mod:`repro.service` cache actually buys: one circuit
is served twice through a fresh :class:`~repro.service.engine.
PartitionEngine` — a *cold* request that runs the full pipeline and a
*warm* repeat of the identical request.  Both serves run under the
observability layer, so the scenario can verify (not just assert by
timing) that the warm serve skipped the compute phases entirely: the
cold trace contains intersection-build / eigensolve / sweep spans, the
warm trace contains none of them, and the engine counters show exactly
one miss followed by one hit.

``python -m repro.bench --cache-scenario`` is the CLI front end; the
returned payload is JSON-serialisable for machine consumption.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from .. import obs
from .suite import build_circuit

__all__ = ["COMPUTE_SPAN_PREFIXES", "run_cache_scenario"]

#: Span-name roots that mean "the partitioner actually computed": the
#: intersection-graph build, any eigensolve, the split sweeps, and the
#: iterative algorithms' own phases.  A cached serve must produce none
#: of these (only ``service.*`` spans).
COMPUTE_SPAN_PREFIXES = (
    "intersection",
    "spectral",
    "splits",
    "igmatch",
    "eig1",
    "fm",
    "rcut",
    "kl",
    "anneal",
    "multilevel",
)


def _compute_spans(phases: Dict[str, Any]) -> Sequence[str]:
    return sorted(
        name
        for name in phases
        if any(
            name == root or name.startswith(root + ".")
            for root in COMPUTE_SPAN_PREFIXES
        )
    )


def _observed_serve(engine, h, request) -> Dict[str, Any]:
    """One serve under a fresh obs session; returns its trace summary."""
    from ..service.engine import result_to_payload

    with obs.enabled():
        served = engine.partition(h, request)
        phases = {
            name: {"seconds": round(seconds, 6), "count": count}
            for name, (seconds, count) in sorted(
                obs.flatten_totals().items()
            )
        }
        service_counters = obs.counters("service.")
    return {
        "cached": served.cached,
        "source": served.source,
        "fingerprint": served.fingerprint,
        "trace_id": served.trace_id,
        "seconds": served.result.elapsed_seconds,
        "nets_cut": served.result.nets_cut,
        "ratio_cut": served.result.ratio_cut,
        "phases": phases,
        "compute_spans": list(_compute_spans(phases)),
        "counters": service_counters,
        "payload": result_to_payload(served.result),
    }


def run_cache_scenario(
    name: str = "Test05",
    seed: int = 0,
    scale: float = 1.0,
    algorithm: str = "ig-match",
    cache_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Serve ``name`` cold then warm through a fresh engine.

    Returns a payload with both serve records, the speedup, and a
    ``verified`` block recording the three contract checks: the warm
    serve hit the cache, it ran **zero** compute-phase spans, and its
    deterministic result fields are byte-identical to the cold serve's.
    """
    import time

    from ..service import PartitionEngine, PartitionRequest, ResultCache

    h = build_circuit(name, seed=seed, scale=scale)
    engine = PartitionEngine(
        cache=ResultCache(disk_dir=cache_dir, use_disk=cache_dir is not None)
    )
    request = PartitionRequest(algorithm=algorithm, seed=seed)

    start = time.perf_counter()
    cold = _observed_serve(engine, h, request)
    cold_wall = time.perf_counter() - start
    start = time.perf_counter()
    warm = _observed_serve(engine, h, request)
    warm_wall = time.perf_counter() - start

    latency = {}
    for hist_name in (
        "service.request.duration_seconds",
        "service.cache.lookup.duration_seconds",
        "service.compute.duration_seconds",
    ):
        merged = engine.hists.merged(hist_name)
        if merged is not None and merged.count:
            latency[hist_name] = dict(
                merged.percentiles(), count=merged.count
            )

    cold_payload = dict(cold.pop("payload"))
    warm_payload = dict(warm.pop("payload"))
    cold_payload.pop("elapsed_seconds", None)
    warm_payload.pop("elapsed_seconds", None)
    stats = engine.stats
    verified = {
        "warm_hit": warm["cached"] and not cold["cached"],
        "warm_skipped_compute": not warm["compute_spans"],
        "cold_ran_compute": bool(cold["compute_spans"]),
        "results_identical": cold_payload == warm_payload,
        "counters_one_miss_one_hit": (
            stats["service.cache.miss"] == 1
            and stats["service.cache.hit"] == 1
            and stats["service.computed"] == 1
        ),
    }
    return {
        "schema": 1,
        "scenario": "cache-cold-vs-warm",
        "circuit": name,
        "algorithm": algorithm,
        "seed": seed,
        "scale": scale,
        "modules": h.num_modules,
        "nets": h.num_nets,
        "cold": cold,
        "warm": warm,
        "cold_wall_s": round(cold_wall, 6),
        "warm_wall_s": round(warm_wall, 6),
        "latency": latency,
        "speedup": round(cold_wall / warm_wall, 1) if warm_wall > 0 else None,
        "verified": verified,
        "ok": all(verified.values()),
    }
