"""Scale-curve benchmarking: empirical complexity exponents per
algorithm.

The paper's Table 2/3 circuits top out at a few thousand modules; the
roadmap's north star is a million.  Whether an algorithm survives that
trip is a question about *slope*, not about any single wall-clock
number: an implementation whose time grows like ``n^1.1`` reaches a
million modules, one that grows like ``n^2`` does not — and a constant-
factor-fast ``n^2`` looks great on every small benchmark.

:func:`run_scale_curve` sweeps one generated circuit over a geometric
size ladder (the ``scale`` knob of :func:`repro.bench.build_circuit`),
measures wall time and Python-heap peak memory at each rung, and fits
log-log least-squares power laws ``y = coeff * n^exponent`` for both
metrics.  The exponents — *not* the raw times — are what
:func:`repro.obs.diff.diff_scale_payloads` gates on, which makes the
gate robust to machine speed: a slower CI runner shifts every point by
the same factor and leaves the slope untouched.

Measurement notes
-----------------

* Each point runs under :mod:`tracemalloc` so memory and time come from
  the same run.  tracemalloc adds allocation-proportional overhead; the
  baseline is produced the same way, so the overhead cancels in the
  exponent comparison.
* ``repeats`` re-runs each rung and keeps the *minimum* wall time and
  *maximum* heap peak — min-of-k is the standard noise reducer for
  timing, max-of-k the conservative choice for a watermark.
* The fitted ``stderr`` of the slope feeds the diff tolerance: a noisy
  fit widens its own gate (see :func:`~repro.obs.diff.diff_scale_payloads`).

Payload schema (``BENCH_scale.json``)::

    {"schema": 1, "kind": "scale",
     "circuit": "Prim2", "seed": 0, "scales": [0.05, ...],
     "algorithms": [
       {"algorithm": "ig-match",
        "points": [{"scale", "modules", "nets", "wall_s",
                    "peak_mem_bytes", "alloc_bytes",
                    "nets_cut", "ratio_cut"}, ...],
        "fits": {"time":   {"exponent", "coeff", "stderr", "r2"},
                 "memory": {"exponent", "coeff", "stderr", "r2"}}},
       ...]}
"""

from __future__ import annotations

import json
import math
import time
import tracemalloc
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..core import get_core
from ..errors import ReproError
from .suite import build_circuit

__all__ = [
    "DEFAULT_ALGORITHMS",
    "DEFAULT_SCALES",
    "fit_power_law",
    "run_scale_curve",
    "validate_scale_payload",
]

#: Geometric ladder (each rung 2x the previous) small enough for a CI
#: smoke run yet spanning a decade of sizes — enough leverage for a
#: stable log-log slope.
DEFAULT_SCALES = (0.05, 0.1, 0.2, 0.4)

#: The paper's headline algorithm plus the classical move-based
#: baseline it is compared against.
DEFAULT_ALGORITHMS = ("ig-match", "fm")

#: Floors keep ``log`` finite when a rung is too fast/small to measure:
#: one microsecond, one byte.
_TIME_FLOOR_S = 1e-6
_MEM_FLOOR_B = 1.0


def fit_power_law(
    sizes: Sequence[float], values: Sequence[float], floor: float = 1e-12
) -> Dict[str, float]:
    """Least-squares fit of ``value = coeff * size^exponent`` in log-log
    space.

    Returns ``{"exponent", "coeff", "stderr", "r2"}`` where ``stderr``
    is the standard error of the fitted slope (0 when there are too few
    degrees of freedom to estimate it) and ``r2`` the coefficient of
    determination.  Needs at least two distinct sizes.
    """
    if len(sizes) != len(values):
        raise ReproError("fit_power_law: sizes and values differ in length")
    if len(sizes) < 2 or len(set(sizes)) < 2:
        raise ReproError(
            "fit_power_law needs at least two distinct sizes "
            f"(got {sorted(set(sizes))})"
        )
    xs = [math.log(float(s)) for s in sizes]
    ys = [math.log(max(float(v), floor)) for v in values]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum(
        (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
    )
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    dof = n - 2
    stderr = math.sqrt(ss_res / dof / sxx) if dof > 0 else 0.0
    return {
        "exponent": round(slope, 6),
        "coeff": round(math.exp(intercept), 12),
        "stderr": round(stderr, 6),
        "r2": round(r2, 6),
    }


def _measure_point(
    circuit: str,
    seed: int,
    scale: float,
    algorithm: str,
    repeats: int,
    restarts: int,
) -> Dict[str, Any]:
    """One ladder rung: run ``algorithm`` ``repeats`` times under
    tracemalloc, keep min wall time and max heap peak."""
    # Late import: repro.bench loads before repro.partitioning in the
    # package __init__ (same circularity as suite._circuit_task).
    from ..cli import _run_algorithm

    h = build_circuit(circuit, seed=seed, scale=scale)
    we_started = not tracemalloc.is_tracing()
    if we_started:
        tracemalloc.start()
    try:
        best_wall = math.inf
        max_peak = 0
        max_alloc = 0
        result = None
        for _ in range(max(1, repeats)):
            tracemalloc.reset_peak()
            start_bytes = tracemalloc.get_traced_memory()[0]
            t0 = time.perf_counter()
            result = _run_algorithm(
                h, algorithm, seed=seed, restarts=restarts, stride=1
            )
            wall = time.perf_counter() - t0
            current, peak = tracemalloc.get_traced_memory()
            best_wall = min(best_wall, wall)
            max_peak = max(max_peak, peak - start_bytes)
            max_alloc = max(max_alloc, current - start_bytes)
    finally:
        if we_started:
            tracemalloc.stop()
    return {
        "scale": scale,
        "modules": h.num_modules,
        "nets": h.num_nets,
        "wall_s": round(max(best_wall, _TIME_FLOOR_S), 6),
        "peak_mem_bytes": int(max(max_peak, _MEM_FLOOR_B)),
        "alloc_bytes": int(max_alloc),
        "nets_cut": result.nets_cut,
        "ratio_cut": result.ratio_cut,
    }


def run_scale_curve(
    circuit: str = "Prim2",
    seed: int = 0,
    scales: Sequence[float] = DEFAULT_SCALES,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    repeats: int = 1,
    restarts: int = 1,
    out_path: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Sweep ``circuit`` over the size ladder and fit complexity
    exponents for every algorithm.

    Returns (and optionally writes to ``out_path``, conventionally
    ``BENCH_scale.json``) the payload documented in the module
    docstring.  The x-axis of every fit is the realised module count at
    each rung, not the abstract scale factor.
    """
    scales = sorted(float(s) for s in scales)
    if len(set(scales)) < 2:
        raise ReproError(
            "a scale curve needs at least two distinct scales "
            f"(got {scales})"
        )
    records: List[Dict[str, Any]] = []
    for algorithm in algorithms:
        points = [
            _measure_point(
                circuit, seed, scale, algorithm,
                repeats=repeats, restarts=restarts,
            )
            for scale in scales
        ]
        sizes = [p["modules"] for p in points]
        records.append({
            "algorithm": algorithm,
            "points": points,
            "fits": {
                "time": fit_power_law(
                    sizes, [p["wall_s"] for p in points], _TIME_FLOOR_S
                ),
                "memory": fit_power_law(
                    sizes,
                    [p["peak_mem_bytes"] for p in points],
                    _MEM_FLOOR_B,
                ),
            },
        })
    payload: Dict[str, Any] = {
        "schema": 1,
        "kind": "scale",
        "circuit": circuit,
        "seed": seed,
        "scales": scales,
        # Advisory provenance: which hypergraph core timed these runs.
        # Results are core-independent; exponents are not compared
        # across cores unless the caller points --compare at the
        # matching baseline.
        "core": get_core(),
        "algorithms": records,
    }
    if out_path is not None:
        Path(out_path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return payload


#: Known BENCH_scale.json schema versions.
_KNOWN_SCALE_SCHEMAS = (1,)

_POINT_KEYS = ("scale", "modules", "wall_s", "peak_mem_bytes")
_FIT_KEYS = ("exponent", "coeff", "stderr", "r2")


def validate_scale_payload(payload: Any) -> List[str]:
    """Structural validation of a BENCH_scale payload.

    Returns a list of human-readable problems (empty = valid).  Used by
    the CLI on ``--compare`` baselines and by tests on fresh output, so
    a hand-edited or truncated baseline fails with a message instead of
    a ``KeyError`` deep inside the diff.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload is {type(payload).__name__}, expected object"]
    if payload.get("schema") not in _KNOWN_SCALE_SCHEMAS:
        problems.append(
            f"unknown schema {payload.get('schema')!r} "
            f"(known: {_KNOWN_SCALE_SCHEMAS})"
        )
    if payload.get("kind") != "scale":
        problems.append(
            f"kind is {payload.get('kind')!r}, expected 'scale'"
        )
    for key in ("circuit", "seed", "scales"):
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    algorithms = payload.get("algorithms")
    if not isinstance(algorithms, list) or not algorithms:
        problems.append("'algorithms' must be a non-empty list")
        return problems
    for i, alg in enumerate(algorithms):
        label = alg.get("algorithm", f"#{i}") if isinstance(alg, dict) else f"#{i}"
        if not isinstance(alg, dict):
            problems.append(f"algorithm {label} is not an object")
            continue
        points = alg.get("points")
        if not isinstance(points, list) or len(points) < 2:
            problems.append(
                f"algorithm {label}: 'points' must list >= 2 rungs"
            )
        else:
            for j, point in enumerate(points):
                missing = [
                    k for k in _POINT_KEYS
                    if not isinstance(point, dict) or k not in point
                ]
                if missing:
                    problems.append(
                        f"algorithm {label} point {j}: missing {missing}"
                    )
        fits = alg.get("fits")
        if not isinstance(fits, dict):
            problems.append(f"algorithm {label}: missing 'fits'")
            continue
        for metric in ("time", "memory"):
            fit = fits.get(metric)
            missing = [
                k for k in _FIT_KEYS
                if not isinstance(fit, dict) or k not in fit
            ]
            if missing:
                problems.append(
                    f"algorithm {label} fits.{metric}: missing {missing}"
                )
    return problems
