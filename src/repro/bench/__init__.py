"""Benchmark circuits: synthetic stand-ins for the paper's test suite.

Specifications (module counts, planted-partition shapes, paper reference
rows), the hierarchical netlist generator, and the cached suite builder.
"""

from .generator import (
    generate_from_spec,
    generate_hierarchical,
    sample_net_sizes,
)
from .logic_generator import generate_logic_circuit, generate_logic_verilog
from .primary2_histogram import (
    PRIMARY2_CUT_HISTOGRAM,
    PRIMARY2_NET_SIZE_HISTOGRAM,
    PRIMARY2_NUM_NETS,
)
from .scale_curve import (
    fit_power_law,
    run_scale_curve,
    validate_scale_payload,
)
from .specs import BENCHMARKS, BenchmarkSpec, PaperRow, get_spec, spec_names
from .suite import (
    build_circuit,
    build_suite,
    planted_sides,
    run_observed_suite,
)

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "PRIMARY2_CUT_HISTOGRAM",
    "PRIMARY2_NET_SIZE_HISTOGRAM",
    "PRIMARY2_NUM_NETS",
    "PaperRow",
    "build_circuit",
    "build_suite",
    "fit_power_law",
    "generate_from_spec",
    "generate_hierarchical",
    "generate_logic_circuit",
    "generate_logic_verilog",
    "get_spec",
    "planted_sides",
    "run_observed_suite",
    "run_scale_curve",
    "sample_net_sizes",
    "spec_names",
    "validate_scale_payload",
]
