"""Gate-level synthetic logic generation.

The hierarchical generator (:mod:`repro.bench.generator`) produces
abstract hypergraphs; this module produces *gate-level circuits* —
levelised random logic in the style of synthetic-benchmark tools like
GNL — emitted as structural Verilog, so the whole front-end path
(Verilog → hypergraph → partitioner) is exercised end to end:

* ``num_inputs`` primary inputs and a levelised combinational core of
  ``levels`` layers of random gates (``not``/``buf`` for fan-in 1,
  ``and``/``or``/``nand``/``nor``/``xor`` for 2+), each gate reading
  mostly from the previous layer with occasional longer feed-forward
  taps;
* an optional sequential fraction: selected gate outputs drive ``dff``
  instances whose ``q`` outputs feed back into the earliest layer, all
  clocked by one global ``clk`` net — the classic wide net that makes
  the clique model explode (Section 2.1 of the paper);
* ``num_outputs`` primary outputs tapped from the last layer.

Deterministic in the seed.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..errors import BenchmarkError
from ..hypergraph import Hypergraph
from ..hypergraph.formats import loads_verilog

__all__ = ["generate_logic_verilog", "generate_logic_circuit"]

_UNARY = ("not", "buf")
_MULTI = ("and", "or", "nand", "nor", "xor")


def generate_logic_verilog(
    num_inputs: int = 16,
    num_outputs: int = 8,
    gates_per_level: int = 24,
    levels: int = 5,
    max_fanin: int = 4,
    dff_fraction: float = 0.15,
    long_tap_probability: float = 0.15,
    seed: int = 0,
    module_name: str = "synth",
) -> str:
    """Generate a structural-Verilog netlist (see module docstring)."""
    if num_inputs < 2:
        raise BenchmarkError("need at least 2 primary inputs")
    if levels < 1 or gates_per_level < 1:
        raise BenchmarkError("need at least one level of gates")
    if max_fanin < 2:
        raise BenchmarkError(f"max_fanin must be >= 2, got {max_fanin}")
    if not 0.0 <= dff_fraction < 1.0:
        raise BenchmarkError("dff_fraction must lie in [0, 1)")
    rng = random.Random(seed)

    inputs = [f"pi{i}" for i in range(num_inputs)]
    sequential = dff_fraction > 0
    clk = ["clk"] if sequential else []

    wires: List[str] = []
    statements: List[str] = []
    gate_count = 0
    dff_count = 0

    # Signals available as gate inputs, per level (level 0 = PIs + any
    # flip-flop outputs, created lazily below).
    available: List[List[str]] = [list(inputs)]
    feedback_wires: List[str] = []

    for level in range(1, levels + 1):
        produced: List[str] = []
        for _ in range(gates_per_level):
            fanin = rng.randint(1, max_fanin)
            sources = []
            pool_previous = available[level - 1]
            pool_earlier = [
                s for lvl in available[:-1] for s in lvl
            ] or pool_previous
            for _ in range(fanin):
                if rng.random() < long_tap_probability:
                    sources.append(rng.choice(pool_earlier))
                else:
                    sources.append(rng.choice(pool_previous))
            sources = list(dict.fromkeys(sources))  # dedupe, keep order
            gate_type = (
                rng.choice(_UNARY)
                if len(sources) == 1
                else rng.choice(_MULTI)
            )
            out = f"n{level}_{len(produced)}"
            wires.append(out)
            statements.append(
                f"  {gate_type} g{gate_count} "
                f"({out}, {', '.join(sources)});"
            )
            gate_count += 1
            produced.append(out)

            if sequential and rng.random() < dff_fraction:
                q = f"q{dff_count}"
                wires.append(q)
                statements.append(
                    f"  dff ff{dff_count} ({q}, {out}, clk);"
                )
                feedback_wires.append(q)
                dff_count += 1
        available.append(produced)

    # Feed flip-flop outputs back into the first layer's input pool by
    # buffering them onto fresh level-1 consumers.
    for index, q in enumerate(feedback_wires):
        out = f"fb{index}"
        wires.append(out)
        statements.append(f"  buf gfb{index} ({out}, {q});")

    last = available[-1]
    num_outputs = min(num_outputs, len(last))
    outputs = [f"po{i}" for i in range(num_outputs)]
    for i, po in enumerate(outputs):
        statements.append(f"  buf gpo{i} ({po}, {last[i]});")

    ports = inputs + clk + outputs
    lines = [f"// synthetic levelised logic (seed {seed})"]
    lines.append(f"module {module_name} ({', '.join(ports)});")
    lines.append(f"  input {', '.join(inputs + clk)};")
    lines.append(f"  output {', '.join(outputs)};")
    for i in range(0, len(wires), 12):
        lines.append(f"  wire {', '.join(wires[i:i + 12])};")
    lines.extend(statements)
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def generate_logic_circuit(
    seed: int = 0,
    name: Optional[str] = None,
    **kwargs,
) -> Hypergraph:
    """Generate gate-level logic and parse it into a hypergraph.

    Accepts the keyword arguments of :func:`generate_logic_verilog`.
    """
    text = generate_logic_verilog(seed=seed, **kwargs)
    h = loads_verilog(text, name=name or f"synth-logic-{seed}")
    return h
