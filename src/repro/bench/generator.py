"""Synthetic hierarchical netlist generation.

Real netlists have "strong hierarchical organization reflecting the
high-level functional partitioning imposed by the designer" (Section 2.2
of the paper) — hierarchy at *every* scale, not just one planted cut.
The generator models this with a recursive scope tree:

* the module range is recursively bisected — the top split at the
  prescribed ``natural_fraction`` (the planted natural partition), lower
  splits at midpoints — down to leaves of roughly ``subcluster_size``;
* every net is *homed* at a tree node: exactly ``crossing_nets`` nets at
  the root (straddling the planted cut), and the rest by a random
  descent that stops at each internal node with probability ``escape``
  — so every internal cut of the hierarchy is straddled by a
  proportional share of nets, giving the rough, multi-minimum move-gain
  landscape of real circuits;
* a net homed at a node draws ``locality`` of its pins from one primary
  leaf under that node and the rest from anywhere in the node's scope
  (straddlers force at least one pin on each side of their node's
  split);
* a ``noise`` fraction of nets ignores the hierarchy entirely (clocks,
  resets, scan chains);
* the exact or sampled *net-size distribution* (Primary2's histogram
  from Table 1 is reproduced verbatim) is preserved through all repairs.

Every module is guaranteed at least one net, and each side of the
planted partition is internally connected, so no zero-cut partition
exists.  Generation is deterministic in the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import BenchmarkError
from ..hypergraph import Hypergraph
from .specs import BenchmarkSpec

__all__ = ["generate_hierarchical", "generate_from_spec", "sample_net_sizes"]


def sample_net_sizes(
    rng: random.Random,
    num_nets: int,
    mean_net_size: float = 3.4,
    max_net_size: int = 30,
    wide_fraction: float = 0.015,
    wide_max: int = 80,
) -> List[int]:
    """Sample net sizes matching real net-size histograms.

    The bulk is ``2 + Geometric`` with the success rate chosen so the
    mean matches ``mean_net_size``, truncated at ``max_net_size`` (most
    nets are 2-pin).  A ``wide_fraction`` share is drawn uniformly from
    ``[max_net_size, wide_max]`` — the buses, clock trees and scan
    chains that dominate the clique model's nonzero count (a 100-pin net
    alone generates 9 900 adjacency nonzeros, the paper's Section 2.1
    example).
    """
    if mean_net_size <= 2.0:
        raise BenchmarkError(
            f"mean_net_size must exceed 2.0, got {mean_net_size}"
        )
    p = 1.0 / (mean_net_size - 1.0)
    num_wide = round(wide_fraction * num_nets)
    wide_max = max(wide_max, max_net_size)
    sizes = []
    for _ in range(num_nets - num_wide):
        size = 2
        while rng.random() > p and size < max_net_size:
            size += 1
        sizes.append(size)
    for _ in range(num_wide):
        sizes.append(rng.randint(max_net_size, wide_max))
    return sizes


def _histogram_to_sizes(
    histogram: Dict[int, int], rng: random.Random
) -> List[int]:
    sizes: List[int] = []
    for size, count in sorted(histogram.items()):
        if size < 2:
            raise BenchmarkError(
                f"net-size histogram contains size {size} < 2"
            )
        sizes.extend([size] * count)
    rng.shuffle(sizes)
    return sizes


# ----------------------------------------------------------------------
# The scope tree
# ----------------------------------------------------------------------
@dataclass
class _Node:
    """A scope-tree node covering modules ``lo .. hi-1``."""

    lo: int
    hi: int
    children: List["_Node"] = field(default_factory=list)

    @property
    def size(self) -> int:
        return self.hi - self.lo

    @property
    def is_leaf(self) -> bool:
        return not self.children


def _build_tree(lo: int, hi: int, leaf_size: int) -> _Node:
    node = _Node(lo, hi)
    if hi - lo > max(2, leaf_size):
        mid = (lo + hi) // 2
        node.children = [
            _build_tree(lo, mid, leaf_size),
            _build_tree(mid, hi, leaf_size),
        ]
    return node


def _descend(node: _Node, escape: float, rng: random.Random) -> _Node:
    """Random descent: stop (home the net here) with prob ``escape`` at
    each internal node, else recurse into a size-weighted child."""
    while not node.is_leaf:
        if rng.random() < escape:
            return node
        weights = [c.size for c in node.children]
        node = rng.choices(node.children, weights=weights)[0]
    return node


def _random_leaf(node: _Node, rng: random.Random) -> _Node:
    while not node.is_leaf:
        weights = [c.size for c in node.children]
        node = rng.choices(node.children, weights=weights)[0]
    return node


def _pick(
    lo: int,
    hi: int,
    count: int,
    chosen: set,
    rng: random.Random,
    uncovered: set,
) -> List[int]:
    """Sample ``count`` distinct modules from ``[lo, hi)``, preferring
    not-yet-covered modules so coverage falls out of generation."""
    if count <= 0:
        return []
    pool = [m for m in range(lo, hi) if m not in chosen]
    preferred = [m for m in pool if m in uncovered]
    rng.shuffle(preferred)
    rest = [m for m in pool if m not in uncovered]
    rng.shuffle(rest)
    return (preferred + rest)[:count]


def _draw_net(
    size: int,
    home: _Node,
    straddle: bool,
    locality: float,
    rng: random.Random,
    uncovered: set,
) -> List[int]:
    """Draw one net's pins inside ``home``'s scope.

    A ``locality`` share of pins comes from a primary leaf; the rest
    from the whole scope.  A straddling net places its first two pins in
    different children of ``home``.
    """
    size = min(size, home.size)
    chosen: set = set()
    pins: List[int] = []

    if straddle and not home.is_leaf and size >= 2:
        for child in home.children:
            leaf = _random_leaf(child, rng)
            got = _pick(leaf.lo, leaf.hi, 1, chosen, rng, uncovered)
            pins += got
            chosen.update(got)
        primary = _random_leaf(home.children[0], rng)
    else:
        primary = _random_leaf(home, rng)

    want_local = sum(
        1 for _ in range(size - len(pins)) if rng.random() < locality
    )
    got = _pick(primary.lo, primary.hi, want_local, chosen, rng, uncovered)
    pins += got
    chosen.update(got)
    got = _pick(home.lo, home.hi, size - len(pins), chosen, rng, uncovered)
    pins += got
    return pins


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
def generate_hierarchical(
    num_modules: int,
    num_nets: int,
    natural_fraction: float = 0.3,
    crossing_nets: int = 10,
    subcluster_size: int = 70,
    locality: float = 0.8,
    escape: float = 0.08,
    noise: float = 0.03,
    net_size_histogram: Optional[Dict[int, int]] = None,
    mean_net_size: float = 3.4,
    max_net_size: int = 30,
    wide_fraction: float = 0.015,
    wide_max: int = 80,
    seed: int = 0,
    name: str = "",
) -> Hypergraph:
    """Generate one hierarchical clustered netlist (see module docstring).

    When ``net_size_histogram`` is given it is reproduced exactly and
    ``num_nets`` is ignored in favour of the histogram total.  The
    planted natural partition puts modules ``0 .. round(f*n)-1`` on one
    side; ``crossing_nets`` nets straddle it.
    """
    if num_modules < 4:
        raise BenchmarkError(f"need at least 4 modules, got {num_modules}")
    if not 0.0 < natural_fraction < 1.0:
        raise BenchmarkError(
            f"natural_fraction must be in (0, 1), got {natural_fraction}"
        )
    if not 0.0 <= escape < 1.0:
        raise BenchmarkError(f"escape must be in [0, 1), got {escape}")
    rng = random.Random(seed)

    if net_size_histogram is not None:
        sizes = _histogram_to_sizes(net_size_histogram, rng)
    else:
        sizes = sample_net_sizes(
            rng,
            num_nets,
            mean_net_size,
            max_net_size,
            wide_fraction=wide_fraction,
            wide_max=wide_max,
        )
    if crossing_nets >= len(sizes):
        raise BenchmarkError(
            f"crossing_nets={crossing_nets} >= total nets {len(sizes)}"
        )

    num_u = max(2, min(num_modules - 2, round(natural_fraction * num_modules)))
    root = _Node(0, num_modules)
    root.children = [
        _build_tree(0, num_u, subcluster_size),
        _build_tree(num_u, num_modules, subcluster_size),
    ]

    uncovered = set(range(num_modules))
    nets: List[List[int]] = []

    order = list(range(len(sizes)))
    rng.shuffle(order)
    crossing_set = set(order[:crossing_nets])
    num_noise = round(noise * len(sizes))
    noise_set = set(order[crossing_nets : crossing_nets + num_noise])

    for index, size in enumerate(sizes):
        if index in noise_set:
            pins = _pick(0, num_modules, size, set(), rng, uncovered)
        elif index in crossing_set:
            pins = _draw_net(size, root, True, locality, rng, uncovered)
        else:
            block = rng.choices(
                root.children, weights=[c.size for c in root.children]
            )[0]
            home = _descend(block, escape, rng)
            # Nets wider than their home scope (wide buses landing in a
            # leaf) are re-homed at the block root so their size is kept.
            if home.size < size:
                home = block
            pins = _draw_net(
                size, home, not home.is_leaf, locality, rng, uncovered
            )
        uncovered.difference_update(pins)
        nets.append(pins)

    _repair_isolated(nets, uncovered, num_modules, rng)
    # Real circuits are connected designs; connect each side of the
    # planted cut internally (the crossing nets then connect the sides),
    # so that no zero-cut partition exists to short-circuit the
    # ratio-cut metric.
    _connect_modules(nets, range(0, num_u), rng)
    _connect_modules(nets, range(num_u, num_modules), rng)
    return Hypergraph(nets, num_modules=num_modules, name=name)


def _repair_isolated(
    nets: List[List[int]],
    uncovered: set,
    num_modules: int,
    rng: random.Random,
) -> None:
    """Give every still-isolated module a pin without changing net sizes.

    Replaces a pin of a net whose victim pin appears on >= 2 nets, so no
    new isolation is created.  Net sizes are preserved exactly.
    """
    if not uncovered:
        return
    degree = [0] * num_modules
    for pins in nets:
        for pin in pins:
            degree[pin] += 1
    net_order = list(range(len(nets)))
    rng.shuffle(net_order)
    for module in sorted(uncovered):
        placed = False
        for net_index in net_order:
            pins = nets[net_index]
            for position, victim in enumerate(pins):
                if degree[victim] >= 2 and module not in pins:
                    pins[position] = module
                    degree[victim] -= 1
                    degree[module] += 1
                    placed = True
                    break
            if placed:
                break
        if not placed:
            raise BenchmarkError(
                f"could not attach isolated module {module}: "
                "every pin is load-bearing (netlist too sparse)"
            )


def _connect_modules(
    nets: List[List[int]], block: Sequence[int], rng: random.Random
) -> None:
    """Rewire pins until the block's modules form one connected component.

    Connectivity is judged over the given modules only (pins outside the
    block do not merge components, so planted cross-block structure is
    untouched).  Each repair replaces one pin of a net inside the largest
    component — a pin whose module has other nets, so nothing becomes
    isolated — with a module from a smaller component.  Net sizes are
    preserved exactly.
    """
    block_set = set(block)
    if len(block_set) < 2:
        return

    max_rounds = len(block_set) + 10
    for _ in range(max_rounds):
        parent = {v: v for v in block_set}

        def find(v: int) -> int:
            while parent[v] != v:
                parent[v] = parent[parent[v]]
                v = parent[v]
            return v

        degree: Dict[int, int] = {v: 0 for v in block_set}
        for pins in nets:
            inside = [p for p in pins if p in block_set]
            for p in inside:
                degree[p] += 1
            for a, b in zip(inside, inside[1:]):
                ra, rb = find(a), find(b)
                if ra != rb:
                    parent[ra] = rb

        components: Dict[int, List[int]] = {}
        for v in block_set:
            components.setdefault(find(v), []).append(v)
        if len(components) == 1:
            return
        ordered = sorted(components.values(), key=len, reverse=True)
        giant = set(ordered[0])
        small = ordered[1]

        repaired = False
        net_order = list(range(len(nets)))
        rng.shuffle(net_order)
        for net_index in net_order:
            pins = nets[net_index]
            for position, victim in enumerate(pins):
                if (
                    victim in giant
                    and degree[victim] >= 2
                    and sum(1 for p in pins if p in giant) >= 2
                ):
                    replacement = rng.choice(small)
                    if replacement in pins:
                        continue
                    pins[position] = replacement
                    repaired = True
                    break
            if repaired:
                break
        if not repaired:
            # Last resort: extend a giant-homed net by one pin (the only
            # repair that perturbs a net size; essentially never needed).
            for net_index in net_order:
                pins = nets[net_index]
                if any(p in giant for p in pins):
                    pins.append(rng.choice(small))
                    repaired = True
                    break
        if not repaired:
            raise BenchmarkError(
                "could not connect block: no net touches its largest "
                "component"
            )
    raise BenchmarkError(
        "block connectivity repair did not converge "
        f"(block of {len(block_set)} modules)"
    )


def generate_from_spec(
    spec: BenchmarkSpec, seed: int = 0, scale: float = 1.0
) -> Hypergraph:
    """Realise a :class:`BenchmarkSpec`, optionally scaled down.

    ``scale`` < 1 shrinks the module/net counts proportionally (exact
    histograms are scaled per-bin); the planted-partition shape is kept.
    Useful for fast test runs; the experiment harness defaults to full
    size.
    """
    if scale <= 0:
        raise BenchmarkError(f"scale must be positive, got {scale}")
    histogram = spec.net_size_histogram
    num_modules = max(8, round(spec.num_modules * scale))
    num_nets = max(8, round(spec.num_nets * scale))
    crossing = max(1, round(spec.crossing_nets * scale))
    if histogram is not None and scale != 1.0:
        histogram = {
            size: max(0, round(count * scale))
            for size, count in histogram.items()
        }
        histogram = {s: c for s, c in histogram.items() if c > 0}
        if not histogram:
            histogram = None
    return generate_hierarchical(
        num_modules=num_modules,
        num_nets=num_nets,
        natural_fraction=spec.natural_fraction,
        crossing_nets=crossing,
        subcluster_size=spec.subcluster_size,
        locality=spec.locality,
        escape=spec.escape,
        noise=spec.noise,
        net_size_histogram=histogram,
        mean_net_size=spec.mean_net_size,
        max_net_size=spec.max_net_size,
        wide_fraction=spec.wide_fraction,
        wide_max=spec.wide_max,
        seed=seed,
        name=spec.name if scale == 1.0 else f"{spec.name}@{scale:g}",
    )
