"""The full benchmark suite: one synthetic circuit per paper benchmark.

:func:`build_suite` realises all nine circuits of Tables 2/3 (optionally
scaled down), caching generated hypergraphs in-process so experiments and
pytest benchmarks share instances.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from ..hypergraph import Hypergraph
from .generator import generate_from_spec
from .specs import BENCHMARKS, BenchmarkSpec, get_spec

__all__ = ["build_circuit", "build_suite", "planted_sides"]


@lru_cache(maxsize=64)
def _cached_circuit(name: str, seed: int, scale: float) -> Hypergraph:
    return generate_from_spec(get_spec(name), seed=seed, scale=scale)


def build_circuit(
    name: str, seed: int = 0, scale: float = 1.0
) -> Hypergraph:
    """One benchmark circuit by name (cached per (name, seed, scale))."""
    return _cached_circuit(name, seed, float(scale))


def build_suite(
    names: Optional[Sequence[str]] = None,
    seed: int = 0,
    scale: float = 1.0,
) -> Dict[str, Hypergraph]:
    """All (or the named) benchmark circuits, keyed by name."""
    if names is None:
        names = [spec.name for spec in BENCHMARKS]
    return {name: build_circuit(name, seed=seed, scale=scale) for name in names}


def planted_sides(h: Hypergraph, spec: BenchmarkSpec) -> List[int]:
    """The planted natural partition of a generated circuit.

    The generator assigns modules ``0 .. num_u-1`` to the U block; this
    reconstructs that assignment (used by tests to verify the planted
    structure is actually a good ratio cut).
    """
    num_u = max(
        2,
        min(
            h.num_modules - 2,
            round(spec.natural_fraction * h.num_modules),
        ),
    )
    return [0 if v < num_u else 1 for v in range(h.num_modules)]
