"""The full benchmark suite: one synthetic circuit per paper benchmark.

:func:`build_suite` realises all nine circuits of Tables 2/3 (optionally
scaled down), caching generated hypergraphs in-process so experiments and
pytest benchmarks share instances.

:func:`run_observed_suite` runs a partitioner over the suite with the
:mod:`repro.obs` layer enabled and returns (optionally writes, as
``BENCH_obs.json``) a machine-readable record of per-circuit wall time,
per-phase time totals, and counters — the perf trajectory that future
optimisation PRs diff against.  ``python -m repro.bench`` is the CLI
front end.
"""

from __future__ import annotations

import json
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..hypergraph import Hypergraph
from ..parallel import ParallelConfig, pstarmap
from .generator import generate_from_spec
from .specs import BENCHMARKS, BenchmarkSpec, get_spec

__all__ = [
    "build_circuit",
    "build_suite",
    "planted_sides",
    "run_observed_suite",
]


@lru_cache(maxsize=64)
def _cached_circuit(name: str, seed: int, scale: float) -> Hypergraph:
    return generate_from_spec(get_spec(name), seed=seed, scale=scale)


def build_circuit(
    name: str, seed: int = 0, scale: float = 1.0
) -> Hypergraph:
    """One benchmark circuit by name (cached per (name, seed, scale))."""
    return _cached_circuit(name, seed, float(scale))


def build_suite(
    names: Optional[Sequence[str]] = None,
    seed: int = 0,
    scale: float = 1.0,
) -> Dict[str, Hypergraph]:
    """All (or the named) benchmark circuits, keyed by name."""
    if names is None:
        names = [spec.name for spec in BENCHMARKS]
    return {name: build_circuit(name, seed=seed, scale=scale) for name in names}


#: Stored convergence curves are downsampled to at most this many
#: samples per series — plenty for rendering, and it keeps a checked-in
#: baseline compact.  Traces (``--trace-json``) always carry the full
#: curve.
_CURVE_SAMPLE_LIMIT = 240


def _is_curve_event(event: Dict[str, Any]) -> bool:
    """Point events carrying at least one numeric series."""
    return any(
        isinstance(v, list)
        and v
        and all(isinstance(e, (int, float)) for e in v)
        for v in event.values()
    )


def _downsample_curve(
    event: Dict[str, Any], limit: int = _CURVE_SAMPLE_LIMIT
) -> Dict[str, Any]:
    """Deterministically thin every series of a curve event to
    ``limit`` samples, always keeping the final sample and (when a
    ``ratio_cuts`` series is present) the best split."""
    lengths = {
        len(v) for v in event.values() if isinstance(v, list)
    }
    if not lengths or max(lengths) <= limit:
        return event
    n = max(lengths)
    step = -(-n // limit)  # ceil division
    keep = set(range(0, n, step))
    keep.add(n - 1)
    ratio = event.get("ratio_cuts")
    if isinstance(ratio, list) and ratio:
        keep.add(min(range(len(ratio)), key=ratio.__getitem__))
    indices = sorted(i for i in keep if i < n)
    sampled = dict(event)
    for key, value in event.items():
        if isinstance(value, list) and len(value) == n:
            sampled[key] = [value[i] for i in indices]
    return sampled


def _circuit_task(
    name: str, seed: int, scale: float, algorithm: str,
    memprof: bool = False,
) -> Dict[str, Any]:
    """Partition one benchmark circuit under an isolated obs session.

    Module-level (picklable) so :func:`run_observed_suite` can fan
    circuits out over a process pool; the isolated obs state keeps
    concurrently running circuits from interleaving their traces, and
    gives each circuit the same fresh-counters view a serial run had.
    """
    # Imported lazily: repro.bench loads before repro.partitioning in
    # the package __init__, so a module-level import would be circular.
    from .. import obs
    from ..cli import _run_algorithm

    h = build_circuit(name, seed=seed, scale=scale)
    sink = obs.MemorySink()
    mem: Optional[Dict[str, Any]] = None
    with obs.isolated():
        with obs.enabled(sink=sink):
            if memprof:
                obs.enable_memprof()
            result = _run_algorithm(
                h, algorithm, seed=seed, restarts=10, stride=1
            )
            phases = {
                span_name: {"seconds": round(seconds, 6), "count": count}
                for span_name, (seconds, count) in sorted(
                    obs.flatten_totals().items()
                )
            }
            if memprof:
                for span_name, (alloc, peak) in obs.flatten_memory().items():
                    if span_name in phases:
                        phases[span_name]["mem_alloc_bytes"] = alloc
                        phases[span_name]["mem_peak_bytes"] = peak
                mem = obs.memory_snapshot()
            counters = obs.counters()
    spans = [e for e in sink.events if e.get("type") == "span"]
    curves = [
        _downsample_curve(e)
        for e in sink.events
        if e.get("type") == "point" and _is_curve_event(e)
    ]
    record = {
        "name": name,
        "modules": h.num_modules,
        "nets": h.num_nets,
        "seconds": round(result.elapsed_seconds, 6),
        "nets_cut": result.nets_cut,
        "ratio_cut": result.ratio_cut,
        "phases": phases,
        "counters": counters,
        "spans": spans,
        "curves": curves,
    }
    if mem is not None:
        record["mem"] = mem
    return record


def run_observed_suite(
    names: Optional[Sequence[str]] = None,
    seed: int = 0,
    scale: float = 1.0,
    algorithm: str = "ig-match",
    out_path: Optional[Union[str, Path]] = None,
    parallel: Optional[ParallelConfig] = None,
    memprof: bool = False,
) -> Dict[str, Any]:
    """Run ``algorithm`` over the suite with observability enabled.

    Each circuit is partitioned with a fresh observability session
    (counters reset between circuits), and the collected phase totals
    and counters are folded into one JSON-serialisable payload::

        {"schema": 2, "algorithm": ..., "seed": ..., "scale": ...,
         "circuits": [{"name", "modules", "nets", "seconds",
                       "nets_cut", "ratio_cut", "phases", "counters",
                       "spans", "curves"},
                      ...]}

    ``phases`` maps span name -> ``{"seconds", "count"}`` summed over
    the whole run of that circuit.  ``spans`` keeps the raw span events
    (name/dur_s/depth/seq) so reports can rebuild the phase tree;
    ``curves`` keeps the convergence point events (ratio-cut sweeps,
    residual decay, FM gains), downsampled to a rendering-friendly
    size.  When ``out_path`` is given the payload is also written there
    as indented JSON (the conventional name is ``BENCH_obs.json``).

    Schema history: 1 had no ``spans``/``curves``;
    :func:`repro.obs.diff.diff_payloads` accepts both.

    ``parallel`` fans the per-circuit runs out over a worker pool
    (``None`` resolves from the ``REPRO_WORKERS`` / ``REPRO_BACKEND``
    environment).  The payload's deterministic fields (``nets_cut``,
    ``ratio_cut``, ``counters``, phase counts, circuit order) are
    byte-identical to a serial run; only wall-clock fields vary.

    ``memprof`` turns on per-span memory attribution: each phase entry
    gains ``mem_alloc_bytes`` / ``mem_peak_bytes``, every circuit gains
    a ``mem`` snapshot (RSS + tracemalloc watermarks), and the payload
    carries ``"memprof": true``.  Memory fields diff noise-aware and
    never gate (see :mod:`repro.obs.diff`).
    """
    if names is None:
        names = [spec.name for spec in BENCHMARKS]
    circuits: List[Dict[str, Any]] = pstarmap(
        _circuit_task,
        [(name, seed, scale, algorithm, memprof) for name in names],
        parallel,
        label="bench.circuits",
    )
    payload: Dict[str, Any] = {
        "schema": 2,
        "algorithm": algorithm,
        "seed": seed,
        "scale": scale,
        "circuits": circuits,
    }
    if memprof:
        payload["memprof"] = True
    if out_path is not None:
        Path(out_path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return payload


def planted_sides(h: Hypergraph, spec: BenchmarkSpec) -> List[int]:
    """The planted natural partition of a generated circuit.

    The generator assigns modules ``0 .. num_u-1`` to the U block; this
    reconstructs that assignment (used by tests to verify the planted
    structure is actually a good ratio cut).
    """
    num_u = max(
        2,
        min(
            h.num_modules - 2,
            round(spec.natural_fraction * h.num_modules),
        ),
    )
    return [0 if v < num_u else 1 for v in range(h.num_modules)]
