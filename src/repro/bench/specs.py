"""Benchmark circuit specifications and the paper's reference rows.

The paper evaluates on nine circuits: seven from the MCNC layout suite
(bm1, 19ks, Prim1, Prim2, Test02–Test06) plus two industry designs folded
into the same tables.  The MCNC archives are no longer distributable, so
each circuit is realised as a *synthetic structural stand-in*: a
hierarchical clustered netlist matching the published module count, an
approximate net count (Primary2's net-size histogram is known exactly
from Table 1), and a planted natural partition whose shape (side sizes
and crossing-net count) follows the best partition the paper reports.
See DESIGN.md §2 for why this preserves the paper's comparisons.

Each spec also carries the paper's Table 2 / Table 3 rows so experiment
reports can print paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .primary2_histogram import PRIMARY2_NET_SIZE_HISTOGRAM

__all__ = ["PaperRow", "BenchmarkSpec", "BENCHMARKS", "get_spec", "spec_names"]


@dataclass(frozen=True)
class PaperRow:
    """One algorithm's row for one circuit in the paper's tables."""

    areas: str
    nets_cut: int
    ratio_cut: float


@dataclass(frozen=True)
class BenchmarkSpec:
    """Recipe for one synthetic benchmark circuit.

    ``natural_fraction`` is the U-side share of the planted natural
    partition; ``crossing_nets`` the number of nets deliberately drawn
    across it.  Both default to the paper's best-reported partition so
    the stand-in has a "right answer" of the same shape.
    """

    name: str
    num_modules: int
    num_nets: int
    natural_fraction: float
    crossing_nets: int
    subcluster_size: int = 70
    locality: float = 0.8
    escape: float = 0.08
    noise: float = 0.03
    net_size_histogram: Optional[Dict[int, int]] = None
    mean_net_size: float = 3.4
    max_net_size: int = 30
    wide_fraction: float = 0.015
    wide_max: int = 80
    paper_rcut: Optional[PaperRow] = None
    paper_igvote: Optional[PaperRow] = None
    paper_igmatch: Optional[PaperRow] = None

    @property
    def natural_u_modules(self) -> int:
        return max(2, round(self.natural_fraction * self.num_modules))


def _spec(
    name: str,
    modules: int,
    nets: int,
    igmatch: Tuple[str, int, float],
    rcut_row: Tuple[str, int, float],
    igvote: Tuple[str, int, float],
    histogram: Optional[Dict[int, int]] = None,
    max_net_size: int = 30,
    wide_fraction: float = 0.015,
    wide_max: int = 80,
) -> BenchmarkSpec:
    """Build a spec whose planted partition mirrors the IG-Match row."""
    u_area = int(igmatch[0].split(":")[0])
    return BenchmarkSpec(
        name=name,
        num_modules=modules,
        num_nets=nets,
        natural_fraction=u_area / modules,
        crossing_nets=max(1, igmatch[1]),
        net_size_histogram=histogram,
        max_net_size=max_net_size,
        wide_fraction=wide_fraction,
        wide_max=wide_max,
        paper_igmatch=PaperRow(*igmatch),
        paper_rcut=PaperRow(*rcut_row),
        paper_igvote=PaperRow(*igvote),
    )


#: The nine circuits of Tables 2 and 3, in the paper's row order.
BENCHMARKS: List[BenchmarkSpec] = [
    _spec(
        "bm1", 882, 903,
        igmatch=("21:861", 1, 5.53e-5),
        rcut_row=("9:873", 1, 12.73e-5),
        igvote=("21:861", 1, 5.53e-5),
    ),
    _spec(
        "19ks", 2844, 3282,
        igmatch=("650:2194", 85, 5.96e-5),
        rcut_row=("1011:1833", 109, 5.88e-5),
        igvote=("662:2182", 92, 6.37e-5),
    ),
    _spec(
        "Prim1", 833, 902,
        igmatch=("154:679", 14, 1.34e-4),
        rcut_row=("152:681", 14, 1.35e-4),
        igvote=("154:679", 14, 1.34e-4),
    ),
    _spec(
        "Prim2", 3014, 3029,
        igmatch=("740:2274", 77, 4.58e-5),
        rcut_row=("1132:1882", 123, 5.77e-5),
        igvote=("730:2284", 87, 5.22e-5),
        histogram=PRIMARY2_NET_SIZE_HISTOGRAM,
        max_net_size=37,
    ),
    _spec(
        "Test02", 1663, 1720,
        igmatch=("211:1452", 38, 1.24e-4),
        rcut_row=("372:1291", 95, 1.98e-4),
        igvote=("228:1435", 48, 1.47e-4),
    ),
    _spec(
        "Test03", 1607, 1618,
        igmatch=("803:804", 58, 8.98e-5),
        rcut_row=("147:1460", 31, 14.44e-5),
        igvote=("787:820", 64, 9.92e-5),
    ),
    _spec(
        "Test04", 1515, 1658,
        igmatch=("73:1442", 6, 5.70e-5),
        rcut_row=("401:1114", 51, 11.42e-5),
        igvote=("71:1444", 6, 5.85e-5),
    ),
    _spec(
        "Test05", 2595, 2750,
        igmatch=("105:2490", 8, 3.06e-5),
        rcut_row=("1204:1391", 110, 6.57e-5),
        igvote=("103:2492", 8, 3.12e-5),
        # Test05 is the paper's sparsity example (219 811 clique nonzeros
        # vs 19 935 intersection-graph nonzeros): it carries a heavier
        # wide-net tail than the other circuits.
        wide_fraction=0.03,
        wide_max=150,
    ),
    _spec(
        "Test06", 1752, 1541,
        igmatch=("141:1611", 17, 7.48e-5),
        rcut_row=("145:1607", 18, 7.72e-5),
        igvote=("143:1609", 19, 8.26e-5),
    ),
]

_BY_NAME = {spec.name.lower(): spec for spec in BENCHMARKS}


def get_spec(name: str) -> BenchmarkSpec:
    """Look up a benchmark spec by (case-insensitive) name."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: "
            f"{[s.name for s in BENCHMARKS]}"
        ) from None


def spec_names() -> List[str]:
    """All benchmark names in table order."""
    return [spec.name for spec in BENCHMARKS]
