"""Warm-vs-cold ECO (incremental partitioning) benchmark scenario.

Measures what :mod:`repro.delta` actually buys in serving terms: a base
circuit is served cold through a fresh
:class:`~repro.service.engine.PartitionEngine` (seeding a warm-start
session), then a chain of random engineering change orders is served
twice per edit — warm through ``POST /partition/delta`` semantics
(:meth:`~repro.service.engine.PartitionEngine.partition_delta`) and
cold by running the full partitioner on the edited hypergraph from
scratch.  The scenario verifies, not just times:

* every delta request took the warm engine path (the
  ``service.delta.warm`` counter equals the number of edits served);
* warm cut quality is **no worse** than the cold recompute's on every
  edit;
* the warm chain is at least ``min_speedup`` times faster than the
  cold recomputes in total wall time.

``python -m repro.bench --eco-scenario`` is the CLI front end; the
returned payload (``BENCH_eco.json``) is JSON-serialisable and gated
in CI.
"""

from __future__ import annotations

import json
import random
import time
from typing import Any, Dict, List, Optional

from .suite import build_circuit

__all__ = ["run_eco_scenario"]


def run_eco_scenario(
    name: str = "Test05",
    seed: int = 0,
    scale: float = 0.4,
    algorithm: str = "ig-match",
    deltas: int = 5,
    delta_seed: int = 1,
    min_speedup: float = 5.0,
) -> Dict[str, Any]:
    """Serve ``deltas`` chained ECO edits warm and cold; verify both
    the quality contract and the speedup floor.

    Returns a payload with the base serve, one record per edit (warm
    and cold wall time, cut quality, the sweep window actually used),
    the aggregate speedup, and a ``verified`` block whose conjunction
    is the scenario's pass/fail verdict.
    """
    from ..delta import dumps_delta, random_delta
    from ..service.engine import (
        PartitionEngine,
        PartitionRequest,
        run_partitioner,
    )

    h = build_circuit(name, seed=seed, scale=scale)
    engine = PartitionEngine()
    request = PartitionRequest(algorithm=algorithm, seed=seed)

    start = time.perf_counter()
    base_served = engine.partition(h, request)
    base_wall = time.perf_counter() - start
    base_record = {
        "fingerprint": base_served.fingerprint,
        "source": base_served.source,
        "wall_s": round(base_wall, 6),
        "nets_cut": base_served.result.nets_cut,
        "ratio_cut": base_served.result.ratio_cut,
    }

    rng = random.Random(delta_seed)
    current = h
    fingerprint = base_served.fingerprint
    edits: List[Dict[str, Any]] = []
    warm_total = 0.0
    cold_total = 0.0
    quality_ok = True
    sources_ok = True
    for index in range(deltas):
        # module_churn would routinely strand a just-added module with
        # no nets, collapsing the optimum to a degenerate ratio-0 cut;
        # net-level edits keep the benchmark measuring real re-solves.
        delta = random_delta(current, rng, module_churn=False)
        doc = json.loads(dumps_delta(delta))
        edited = delta.apply(current)

        start = time.perf_counter()
        served = engine.partition_delta(fingerprint, doc, request)
        warm_wall = time.perf_counter() - start

        start = time.perf_counter()
        cold_result = run_partitioner(edited, request)
        cold_wall = time.perf_counter() - start

        warm_total += warm_wall
        cold_total += cold_wall
        warm_ratio = served.result.ratio_cut
        cold_ratio = cold_result.ratio_cut
        quality_ok = quality_ok and warm_ratio <= cold_ratio
        sources_ok = sources_ok and served.source == "delta-warm"
        details = served.result.details
        edits.append(
            {
                "edit": index,
                "modules": edited.num_modules,
                "nets": edited.num_nets,
                "source": served.source,
                "warm_wall_s": round(warm_wall, 6),
                "cold_wall_s": round(cold_wall, 6),
                "warm_ratio_cut": warm_ratio,
                "cold_ratio_cut": cold_ratio,
                "warm_nets_cut": served.result.nets_cut,
                "cold_nets_cut": cold_result.nets_cut,
                "window": [
                    details.get("window_lo"),
                    details.get("window_hi"),
                ],
                "splits_evaluated": details.get("splits_evaluated"),
                "fingerprint": served.fingerprint,
            }
        )
        fingerprint = served.fingerprint
        current = edited

    speedup: Optional[float] = (
        round(cold_total / warm_total, 1) if warm_total > 0 else None
    )
    stats = engine.stats
    session_stats = engine.sessions.stats_dict()
    verified = {
        "all_edits_served_warm": sources_ok
        and stats["service.delta.warm"] == deltas,
        "quality_no_worse_than_cold": quality_ok,
        "speedup_at_least_min": (
            speedup is not None and speedup >= min_speedup
        ),
        "no_base_misses": stats["service.delta.base_miss"] == 0,
        "sessions_chained": (
            fingerprint in engine.sessions
            and session_stats["service.session.entries"] >= 1
        ),
    }
    return {
        "schema": 1,
        "scenario": "eco-warm-vs-cold",
        "circuit": name,
        "algorithm": algorithm,
        "seed": seed,
        "scale": scale,
        "delta_seed": delta_seed,
        "modules": h.num_modules,
        "nets": h.num_nets,
        "base": base_record,
        "edits": edits,
        "warm_wall_s": round(warm_total, 6),
        "cold_wall_s": round(cold_total, 6),
        "speedup": speedup,
        "min_speedup": min_speedup,
        "counters": {
            key: value
            for key, value in sorted(stats.items())
            if key.startswith("service.delta.")
        },
        "sessions": session_stats,
        "verified": verified,
        "ok": all(verified.values()),
    }
