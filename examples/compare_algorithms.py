#!/usr/bin/env python
"""Run every partitioner in the library on one benchmark circuit.

Reproduces, on a single circuit, the cross-algorithm comparison of the
paper's Section 4: IG-Match vs IG-Vote vs EIG1 vs RCut vs FM vs KL vs
simulated annealing vs the multilevel hybrid — all reporting the same
ratio-cut metric, plus wall time and determinism.

Run:  python examples/compare_algorithms.py [benchmark] [scale]
      (default: Test05 at scale 0.4)
"""

import sys

from repro import (
    AnnealingConfig,
    EIG1Config,
    FMConfig,
    IGMatchConfig,
    IGVoteConfig,
    KLConfig,
    MultilevelConfig,
    RCutConfig,
    anneal,
    build_circuit,
    eig1,
    fm_bipartition,
    ig_match,
    ig_vote,
    kl_bisection,
    multilevel_partition,
    rcut,
)
from repro.experiments import render_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "Test05"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.4
    circuit = build_circuit(name, scale=scale)
    print(f"circuit: {circuit.name} -- {circuit.num_modules} modules, "
          f"{circuit.num_nets} nets\n")

    runs = [
        ig_match(circuit, IGMatchConfig(seed=0)),
        ig_vote(circuit, IGVoteConfig(seed=0)),
        eig1(circuit, EIG1Config(seed=0)),
        rcut(circuit, RCutConfig(restarts=10, seed=0)),
        fm_bipartition(circuit, FMConfig(seed=0)),
        kl_bisection(circuit, KLConfig(seed=0)),
        anneal(circuit, AnnealingConfig(seed=0,
                                        moves_per_temperature=2000)),
        multilevel_partition(circuit, MultilevelConfig(seed=0)),
    ]
    deterministic = {
        "IG-Match": "yes", "IG-Vote": "yes", "EIG1": "yes",
        "RCut": "no (10 restarts)", "FM": "no", "KL": "no",
        "Annealing": "no", "Multilevel": "partly",
    }
    rows = [
        [
            r.algorithm,
            r.areas,
            r.nets_cut,
            f"{r.ratio_cut:.3e}",
            f"{r.elapsed_seconds:.2f}",
            deterministic.get(r.algorithm, "?"),
        ]
        for r in sorted(runs, key=lambda r: r.ratio_cut)
    ]
    print(render_table(
        ["algorithm", "areas", "nets cut", "ratio cut", "seconds",
         "deterministic"],
        rows,
        title=f"all algorithms on {circuit.name} (best ratio cut first)",
    ))
    best = rows[0][0]
    print(f"\nbest ratio cut: {best}")


if __name__ == "__main__":
    main()
