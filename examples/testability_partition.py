#!/usr/bin/env python
"""Hardware-emulation / testability partitioning (Section 1 of the paper).

Wei & Cheng's motivating application: mapping a large design onto a
hardware simulator (or test fixture) means splitting it into blocks.
Every signal crossing between blocks must be multiplexed through scarce
inter-board pins, and every external input to a block inflates the test
vector count — so the objective is to minimise crossing signals per
block, without forcing artificially balanced blocks.

This example partitions a large synthetic design into 4 emulator boards
with recursive IG-Match bipartitioning and reports exactly the costs a
simulation engineer would look at, comparing against a balanced-FM
split (the pre-ratio-cut standard practice).

Run:  python examples/testability_partition.py
"""

from repro import (
    FMConfig,
    fm_bipartition,
    generate_hierarchical,
    recursive_partition,
)
from repro.partitioning.multiway import MultiwayResult


def board_report(title: str, result: MultiwayResult) -> None:
    h = result.hypergraph
    print(f"\n-- {title} " + "-" * max(1, 58 - len(title)))
    print(f"{'board':>6}  {'modules':>8}  {'external signals':>17}")
    for block in range(result.num_blocks):
        external = result.external_nets_of_block(block)
        print(f"{block:>6}  {result.block_sizes[block]:>8}  "
              f"{external:>17}")
    print(f"total multiplexed nets (cut): {result.nets_cut} "
          f"of {h.num_nets}")


def main() -> None:
    # A 1200-module design with natural clustered structure.
    design = generate_hierarchical(
        num_modules=1200,
        num_nets=1300,
        natural_fraction=0.35,
        crossing_nets=20,
        subcluster_size=60,
        seed=3,
        name="emulation-target",
    )
    print(f"design: {design.num_modules} modules, "
          f"{design.num_nets} nets, {design.num_pins} pins")

    # Ratio-cut driven: recursive IG-Match finds natural block
    # boundaries, so few signals cross.
    natural = recursive_partition(design, num_blocks=4)
    board_report("recursive IG-Match (ratio cut)", natural)

    # Balanced-FM driven: forces near-equal boards, cutting through
    # natural clusters.
    balanced = recursive_partition(
        design,
        num_blocks=4,
        bipartitioner=lambda h: fm_bipartition(
            h, FMConfig(balance_tolerance=0.02, seed=0)
        ),
    )
    board_report("recursive balanced FM (bisection)", balanced)

    saved = balanced.nets_cut - natural.nets_cut
    if balanced.nets_cut:
        percent = saved / balanced.nets_cut * 100
        print(f"\nratio-cut partitioning multiplexes {saved} fewer "
              f"nets ({percent:.0f}% saving) -- the effect behind the "
              "50-70% hardware-simulation cost savings reported by "
              "Wei [33].")


if __name__ == "__main__":
    main()
