#!/usr/bin/env python
"""Wireability analysis: Rent's rule from recursive ratio-cut bisection.

Section 1 of the paper lists wireability analysis among the synthesis
applications of partitioning.  This example fits Rent's rule
``T = t * B^p`` to a benchmark circuit (good logic sits around
p = 0.5-0.75; p near 1 signals a randomly-wired, hard-to-route design),
then contrasts a hierarchical circuit with a structure-free random one,
and prints a detailed partition report for the top-level cut.

Run:  python examples/wireability_analysis.py
"""

import random

from repro import build_circuit, ig_match
from repro.analysis import rent_analysis
from repro.hypergraph import Hypergraph
from repro.partitioning import partition_report


def random_netlist(num_modules: int, num_nets: int, seed: int) -> Hypergraph:
    """A structure-free control: uniformly random 2-5 pin nets."""
    rng = random.Random(seed)
    nets = []
    for _ in range(num_nets):
        size = rng.randint(2, 5)
        nets.append(rng.sample(range(num_modules), size))
    for v in range(num_modules):
        if not any(v in pins for pins in nets):
            nets.append([v, (v + 1) % num_modules])
    return Hypergraph(nets, name="random-control")


def main() -> None:
    circuit = build_circuit("Prim1", scale=0.6)
    print(f"hierarchical circuit: {circuit.name} "
          f"({circuit.num_modules} modules, {circuit.num_nets} nets)")
    fit = rent_analysis(circuit, min_block=16)
    print(f"  {fit}")
    print(f"  predicted terminals for a 100-module block: "
          f"{fit.predicted_terminals(100):.0f}")

    control = random_netlist(circuit.num_modules, circuit.num_nets, 1)
    print(f"\nrandom control: {control.num_modules} modules, "
          f"{control.num_nets} nets")
    control_fit = rent_analysis(control, min_block=16)
    print(f"  {control_fit}")

    block = 64
    print("\nstructure shows up as lower wiring demand: a "
          f"{block}-module block needs ~"
          f"{fit.predicted_terminals(block):.0f} terminals in the "
          "hierarchical design vs ~"
          f"{control_fit.predicted_terminals(block):.0f} in the random "
          "control")

    print("\n" + "=" * 64)
    print("top-level partition report for the hierarchical circuit:\n")
    print(partition_report(ig_match(circuit), max_cut_nets=8))


if __name__ == "__main__":
    main()
