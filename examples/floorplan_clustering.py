#!/usr/bin/env python
"""Clustering analysis for floorplanning (Section 1 of the paper).

Partitioning drives early floorplanning: recursive ratio cuts expose
the design's natural cluster tree, and Hall's spectral placement
(Appendix A of the paper) gives each cluster an analytical 2-D seed
position.  This example:

1. builds a benchmark-style circuit,
2. recursively bipartitions it into 8 clusters with the multilevel
   hybrid (coarsen -> IG-Match -> refine),
3. places the cluster-level netlist with Hall's eigenvector placement,
4. prints the resulting floorplan seed: cluster sizes, positions and
   inter-cluster wiring demand.

Run:  python examples/floorplan_clustering.py
"""

from repro import MultilevelConfig, build_circuit, recursive_partition
from repro.clustering import multilevel_partition
from repro.hypergraph import merge_modules
from repro.netmodels import get_model
from repro.spectral import hall_placement


def main() -> None:
    circuit = build_circuit("Test02", scale=0.5)
    print(f"circuit: {circuit.name} -- {circuit.num_modules} modules, "
          f"{circuit.num_nets} nets")

    # 1. Recursive ratio-cut clustering into 8 blocks, using the
    #    multilevel hybrid as the bipartitioner at every level.
    clusters = recursive_partition(
        circuit,
        num_blocks=8,
        bipartitioner=lambda h: multilevel_partition(
            h, MultilevelConfig(target_modules=100, seed=0)
        ),
    )
    print(f"\n8-way clustering: block sizes {clusters.block_sizes}, "
          f"{clusters.nets_cut} nets span blocks")

    # 2. Contract each cluster to one node; the coarse netlist is the
    #    floorplan-level connectivity.
    coarse, _ = merge_modules(circuit, clusters.blocks)
    print(f"cluster-level netlist: {coarse.num_modules} clusters, "
          f"{coarse.num_nets} inter-cluster nets")

    # 3. Hall placement of the cluster graph (Appendix A): second and
    #    third Laplacian eigenvectors as x/y coordinates.
    graph = get_model("clique").to_graph(coarse)
    placement = hall_placement(graph, dimensions=2)

    print("\nfloorplan seed (Hall placement):")
    print(f"{'cluster':>8}  {'modules':>8}  {'area':>7}  "
          f"{'x':>7}  {'y':>7}")
    for c in range(coarse.num_modules):
        x, y = placement.coordinates[c]
        print(f"{c:>8}  {clusters.block_sizes[c]:>8}  "
              f"{coarse.module_area(c):>7.0f}  {x:>7.3f}  {y:>7.3f}")
    print(f"\nquadratic wirelength of the seed: "
          f"x-axis {placement.eigenvalues[0]:.4f}, "
          f"y-axis {placement.eigenvalues[1]:.4f} "
          "(the two smallest nontrivial Laplacian eigenvalues)")

    # 4. For contrast: a full module-level min-cut placement with
    #    terminal propagation, scored by HPWL.
    from repro import hpwl, mincut_placement

    detailed = mincut_placement(circuit, levels=3)
    import random as _random

    rng = _random.Random(0)
    grid = detailed.grid
    random_positions = [
        ((rng.randrange(grid) + 0.5) / grid,
         (rng.randrange(grid) + 0.5) / grid)
        for _ in range(circuit.num_modules)
    ]
    print(f"\nmodule-level min-cut placement on an {grid}x{grid} grid: "
          f"HPWL {detailed.wirelength:.1f} vs random {hpwl(circuit, random_positions):.1f}")


if __name__ == "__main__":
    main()
