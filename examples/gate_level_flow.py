#!/usr/bin/env python
"""Gate-level flow: synthesize → Verilog → hypergraph → partition.

Exercises the complete front-end path a real user would follow:

1. generate a levelised random logic design (synthetic-benchmark style)
   with flip-flops on a global clock,
2. write it out as structural Verilog and read it back through the
   Verilog front end,
3. inspect the netlist (the clock is a wide net — the paper's
   Section 2.1 clique-model pathology),
4. partition with IG-Match, print the engineer-facing report, and
   export the result as an hMETIS .hgr file for other tools.

Run:  python examples/gate_level_flow.py
"""

import tempfile
from pathlib import Path

from repro.analysis import compare_sparsity
from repro.bench import generate_logic_verilog
from repro.hypergraph import load_verilog, net_size_histogram, save_hgr
from repro.partitioning import ig_match, partition_report


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-gate-"))
    verilog_path = workdir / "design.v"

    # 1-2. Synthesize and round-trip through the Verilog front end.
    verilog_path.write_text(
        generate_logic_verilog(
            num_inputs=24,
            num_outputs=12,
            gates_per_level=60,
            levels=8,
            dff_fraction=0.2,
            seed=11,
            module_name="synth_core",
        ),
        encoding="utf-8",
    )
    design = load_verilog(verilog_path)
    print(f"parsed {verilog_path.name}: {design.num_modules} instances "
          f"(incl. pads), {design.num_nets} nets, "
          f"{design.num_pins} pins")

    # 3. The clock net dominates the net-size histogram.
    histogram = net_size_histogram(design)
    widest = max(histogram)
    print(f"widest net: {widest} pins "
          f"(the clk tree over all flip-flops)")
    sparsity = compare_sparsity(design)
    print(f"clique model: {sparsity.clique_nonzeros} nonzeros vs "
          f"intersection graph: {sparsity.intersection_nonzeros} "
          f"({sparsity.sparsity_ratio:.1f}x sparser)")

    # 4. Partition and report.
    result = ig_match(design)
    print()
    print(partition_report(result, max_cut_nets=6))

    hgr_path = workdir / "design.hgr"
    save_hgr(design, hgr_path)
    print(f"\nexported {hgr_path} for hMETIS/KaHyPar interop")


if __name__ == "__main__":
    main()
