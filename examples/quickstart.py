#!/usr/bin/env python
"""Quickstart: partition one netlist end to end.

Builds a small hierarchical circuit, partitions it with IG-Match (the
paper's algorithm), and walks through what each stage produced — the
intersection graph, the spectral net ordering, and the completed module
partition — comparing against the RCut baseline at the end.

Run:  python examples/quickstart.py
"""

from repro import (
    IGMatchConfig,
    RCutConfig,
    generate_hierarchical,
    ig_match,
    intersection_graph,
    rcut,
)
from repro.hypergraph import describe
from repro.spectral import fiedler_vector


def main() -> None:
    # 1. A circuit.  Real designs are hierarchical: this generator
    #    plants a natural 60:240 partition crossed by only 5 nets.
    circuit = generate_hierarchical(
        num_modules=300,
        num_nets=330,
        natural_fraction=0.2,
        crossing_nets=5,
        seed=7,
        name="quickstart",
    )
    print("-- netlist " + "-" * 50)
    print(describe(circuit))

    # 2. The paper's dual representation: the intersection graph has
    #    one vertex per NET, with edges between nets sharing modules.
    graph = intersection_graph(circuit, weighting="paper")
    print("\n-- intersection graph " + "-" * 39)
    print(f"vertices (nets):        {graph.num_vertices}")
    print(f"edges (net overlaps):   {graph.num_edges}")
    fiedler = fiedler_vector(graph)
    print(f"lambda_2:               {fiedler.eigenvalue:.6f}")
    print(
        "ratio-cut lower bound:  "
        f"{fiedler.ratio_cut_lower_bound():.3e}  (Theorem 1)"
    )

    # 3. IG-Match: sweep every split of the sorted eigenvector,
    #    completing each net partition via maximum matching (Phase I)
    #    and module assignment (Phase II).
    result = ig_match(circuit, IGMatchConfig(seed=0))
    print("\n-- IG-Match " + "-" * 49)
    print(f"areas:          {result.areas}")
    print(f"nets cut:       {result.nets_cut}")
    print(f"ratio cut:      {result.ratio_cut:.3e}")
    print(f"best split:     rank {result.details['best_rank']} "
          f"of {circuit.num_nets - 1}")
    print(f"matching bound: {result.details['matching_bound']} "
          "(Theorem 5: nets cut never exceeds this)")
    print(f"wall time:      {result.elapsed_seconds:.2f}s "
          "(single deterministic run)")

    # 4. The Wei-Cheng RCut baseline needs multiple random restarts.
    baseline = rcut(circuit, RCutConfig(restarts=10, seed=0))
    print("\n-- RCut baseline (best of 10 restarts) " + "-" * 22)
    print(f"areas:     {baseline.areas}")
    print(f"nets cut:  {baseline.nets_cut}")
    print(f"ratio cut: {baseline.ratio_cut:.3e}")

    improvement = (
        (baseline.ratio_cut - result.ratio_cut) / baseline.ratio_cut * 100
        if baseline.ratio_cut
        else 0.0
    )
    print(f"\nIG-Match improvement over RCut: {improvement:.0f}% "
          "(paper reports 28.8% on average)")


if __name__ == "__main__":
    main()
