"""Benchmark E3 — regenerate Table 3 (IG-Match vs IG-Vote).

Workload: all nine stand-ins; both completions consume the identical
sorted second eigenvector of the identical intersection graph.

Paper shape claims checked:
* IG-Match is never (meaningfully) worse than IG-Vote — the paper's
  results "uniformly dominate";
* the average improvement is positive (paper: 7%).
"""

import statistics

from repro.experiments import run_table3

from .conftest import run_once, save_result


def test_table3_igmatch_vs_igvote(benchmark, scale, seed):
    result = run_once(
        benchmark, lambda: run_table3(scale=scale, seed=seed)
    )
    save_result("table3_igmatch_vs_igvote", result)

    improvements = [float(row[8]) for row in result.rows]

    # Shape: dominance — IG-Match never loses by more than rounding.
    assert min(improvements) >= -1, (
        f"IG-Match lost to IG-Vote: improvements {improvements}"
    )
    # Shape: positive mean improvement.
    assert statistics.fmean(improvements) >= 0
