"""Benchmark X7 — module replication vs cut.

Shape claims: the cut under replication semantics decreases
monotonically with the budget, and a modest (10%) budget buys a
meaningful reduction on at least one circuit.
"""

from collections import defaultdict

from repro.experiments import run_replication_ablation

from .conftest import run_once, save_result


def test_replication_tradeoff(benchmark, scale, seed):
    result = run_once(
        benchmark,
        lambda: run_replication_ablation(scale=scale, seed=seed),
    )
    save_result("ablation_replication", result)

    by_circuit = defaultdict(list)
    for circuit, _, _, before, after, _ in result.rows:
        by_circuit[circuit].append((int(before), int(after)))

    best_reduction = 0.0
    for circuit, entries in by_circuit.items():
        afters = [after for _, after in entries]
        assert afters == sorted(afters, reverse=True), (
            f"{circuit}: cut did not decrease monotonically with the "
            f"budget: {afters}"
        )
        before = entries[0][0]
        if before:
            best_reduction = max(
                best_reduction, (before - afters[-1]) / before
            )
    assert best_reduction >= 0.2, (
        "a 10% replication budget should cut at least 20% of the "
        f"crossing nets somewhere; best was {best_reduction:.0%}"
    )
