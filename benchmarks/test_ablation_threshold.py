"""Benchmark X4 — net-size thresholding of the spectral input.

Paper conclusion: thresholding sparsifies the eigenvector computation;
footnote 2 warns it can discard partitioning information.

Shape claims: nonzeros decrease monotonically with the threshold, and
the untresholded ordering is never much worse than the best thresholded
one (information loss hurts, sparsity only helps speed).
"""

from collections import defaultdict

from repro.experiments import run_threshold_ablation

from .conftest import run_once, save_result


def test_threshold_tradeoff(benchmark, scale, seed):
    result = run_once(
        benchmark,
        lambda: run_threshold_ablation(scale=scale, seed=seed),
    )
    save_result("ablation_threshold", result)

    by_circuit = defaultdict(list)
    for circuit, label, nonzeros, _, _, ratio in result.rows:
        by_circuit[circuit].append((label, int(nonzeros), float(ratio)))

    for circuit, entries in by_circuit.items():
        # Nonzeros shrink as the threshold tightens (rows are ordered
        # none, 20, 10, 5).
        nonzeros = [e[1] for e in entries]
        assert all(
            a >= b for a, b in zip(nonzeros, nonzeros[1:])
        ), f"{circuit}: {nonzeros}"
        # The full (unthresholded) ordering stays competitive.
        full_ratio = entries[0][2]
        best_ratio = min(e[2] for e in entries)
        assert full_ratio <= 3 * best_ratio, circuit
