"""Benchmark X6 — relaxed Lanczos convergence (§5).

Shape claims: relaxing the tolerance never makes the eigensolve slower,
and even at tol=1e-2 the sweep keeps the ratio cut within a moderate
factor of the tight-tolerance result — the robustness the paper's
conclusion relies on.
"""

from collections import defaultdict

from repro.experiments import run_tolerance_ablation

from .conftest import run_once, save_result


def test_tolerance_tradeoff(benchmark, scale, seed):
    result = run_once(
        benchmark,
        lambda: run_tolerance_ablation(scale=scale, seed=seed),
    )
    save_result("ablation_tolerance", result)

    by_circuit = defaultdict(list)
    for circuit, tol, secs, _, _, ratio in result.rows:
        by_circuit[circuit].append(
            (float(tol), float(secs), float(ratio))
        )

    for circuit, entries in by_circuit.items():
        # Rows are ordered tight -> loose.
        tight_ratio = entries[0][2]
        for _, _, ratio in entries:
            assert ratio <= 5 * tight_ratio, (
                f"{circuit}: relaxed tolerance destroyed quality"
            )
