"""Benchmark E4 — IG-Match vs EIG1 (Section 4 text: 22% average).

Workload: all nine stand-ins; EIG1 (spectral sweep on the clique-model
module graph) against IG-Match (spectral sweep on the intersection
graph + matching completion).

Paper shape claim: the dual representation wins on average.
"""

import statistics

from repro.experiments import run_eig1_comparison

from .conftest import run_once, save_result


def test_igmatch_vs_eig1(benchmark, scale, seed):
    result = run_once(
        benchmark, lambda: run_eig1_comparison(scale=scale, seed=seed)
    )
    save_result("table4_igmatch_vs_eig1", result)

    improvements = [float(row[8]) for row in result.rows]
    assert statistics.fmean(improvements) >= 0, (
        "the intersection-graph pipeline should beat module-graph EIG1 "
        f"on average; improvements: {improvements}"
    )
