"""Benchmarks A2 + X1 — completion-strategy ablation.

With the net ordering held fixed per circuit, compare the naive
majority completion, IG-Vote, IG-Match, and the recursive IG-Match
extension (Section 3 / future work).

Shape claims: IG-Match <= IG-Vote <= naive (in ratio cut, allowing
rounding noise), and the recursive extension never degrades IG-Match.
"""

from collections import defaultdict

from repro.experiments import run_completion_ablation

from .conftest import run_once, save_result


def test_completion_strategies(benchmark, scale, seed):
    result = run_once(
        benchmark,
        lambda: run_completion_ablation(scale=scale, seed=seed),
    )
    save_result("ablation_completion", result)

    table = defaultdict(dict)
    for circuit, strategy, _, _, ratio in result.rows:
        table[circuit][strategy] = float(ratio)

    for circuit, ratios in table.items():
        # IG-Match at least matches IG-Vote on the same ordering.
        assert ratios["IG-Match"] <= ratios["IG-Vote"] * 1.01, circuit
        # The recursive extension never degrades the result.
        assert (
            ratios["IG-Match-recursive"] <= ratios["IG-Match"] * 1.0001
        ), circuit
