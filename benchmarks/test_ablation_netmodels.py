"""Benchmark A3 — net-model ablation under EIG1.

Section 2.1 of the paper: sparse asymmetric models (star/path/cycle)
trade partition quality for matrix sparsity; the clique model is denser
but symmetric.

Shape claims: the clique model's graph has (weakly) more nonzeros than
star/path on every circuit, and the clique model's quality is at least
in the same league as the sparse models' best.
"""

from collections import defaultdict

from repro.experiments import run_netmodel_ablation

from .conftest import run_once, save_result


def test_netmodel_tradeoff(benchmark, scale, seed):
    result = run_once(
        benchmark, lambda: run_netmodel_ablation(scale=scale, seed=seed)
    )
    save_result("ablation_netmodels", result)

    nonzeros = defaultdict(dict)
    ratios = defaultdict(dict)
    for circuit, model, _, _, ratio, nnz in result.rows:
        nonzeros[circuit][model] = int(nnz)
        ratios[circuit][model] = float(ratio)

    for circuit in nonzeros:
        assert nonzeros[circuit]["clique"] >= nonzeros[circuit]["star"]
        assert nonzeros[circuit]["clique"] >= nonzeros[circuit]["path"]
