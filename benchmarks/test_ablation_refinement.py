"""Benchmark X2 — iterative post-refinement of IG-Match output.

Paper conclusion: "the ratio cuts so obtained may optionally be improved
by using standard iterative techniques."

Shape claim: refinement never degrades the ratio cut.
"""

from repro.experiments import run_refinement_ablation

from .conftest import run_once, save_result


def test_refinement_never_degrades(benchmark, scale, seed):
    result = run_once(
        benchmark,
        lambda: run_refinement_ablation(scale=scale, seed=seed),
    )
    save_result("ablation_refinement", result)

    for circuit, before, after, _ in result.rows:
        assert float(after) <= float(before) * 1.0001, circuit
