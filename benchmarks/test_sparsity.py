"""Benchmark E5 — representation sparsity (Sections 1.2/5).

Workload: count adjacency nonzeros for every stand-in under the clique
model and the intersection graph.

Paper shape claim: the intersection graph is substantially sparser,
dramatically so on wide-net circuits (real Test05: 219 811 vs 19 935,
11x).
"""

from repro.experiments import run_sparsity

from .conftest import run_once, save_result


def test_sparsity_comparison(benchmark, scale, seed):
    result = run_once(
        benchmark, lambda: run_sparsity(scale=scale, seed=seed)
    )
    save_result("sparsity", result)

    ratios = {row[0]: float(row[5]) for row in result.rows}
    # Shape: IG sparser on average across the suite.
    mean_ratio = sum(ratios.values()) / len(ratios)
    assert mean_ratio > 1.0
    # Shape: the wide-net circuit (Test05) shows a large factor.
    assert ratios["Test05"] > 3.0, (
        f"Test05 should be much sparser under IG; got "
        f"{ratios['Test05']}x"
    )
