"""Shared configuration for the benchmark harness.

Every paper table/figure has one benchmark module here.  Benchmarks run
the experiment once (``benchmark.pedantic`` with a single round — these
are minutes-long workloads, not microbenchmarks), assert the paper's
*shape* claims, and write the rendered table to
``benchmarks/results/<name>.txt`` so the regenerated artefacts survive
the run.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — circuit size multiplier (default 1.0 =
  paper-sized circuits).  Set e.g. 0.2 for a quick pass.
* ``REPRO_BENCH_SEED`` — generator/eigensolver seed (default 0).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def seed() -> int:
    return bench_seed()


def save_result(name: str, result) -> Path:
    """Persist a rendered ExperimentResult under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(result.render() + "\n", encoding="utf-8")
    return path


def run_once(benchmark, func):
    """Run a whole-experiment callable exactly once under timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
