"""Benchmark E2 — regenerate Table 2 (IG-Match vs RCut1.0).

Workload: all nine benchmark stand-ins; best-of-10 RCut restarts against
one deterministic IG-Match run per circuit.

Paper shape claims checked:
* IG-Match wins on average (paper: 28.8% mean improvement);
* IG-Match is competitive or better on most circuits (the paper has one
  -1% case, 19ks, so a small number of losses is allowed).
"""

import statistics

from repro.experiments import run_table2

from .conftest import run_once, save_result


def test_table2_igmatch_vs_rcut(benchmark, scale, seed):
    result = run_once(
        benchmark,
        lambda: run_table2(scale=scale, seed=seed, restarts=10),
    )
    save_result("table2_igmatch_vs_rcut", result)

    improvements = [float(row[8]) for row in result.rows]
    mean_improvement = statistics.fmean(improvements)

    if scale >= 0.3:
        # Shape: IG-Match wins on average (the paper's 28.8%).  Tiny
        # scaled-down circuits are easy for restart-based RCut, so the
        # claim is only meaningful near paper-sized instances.
        assert mean_improvement > 0, (
            f"IG-Match should beat RCut on average; got "
            f"{mean_improvement:.1f}%"
        )
    else:
        assert mean_improvement > -25
    # Shape: losses are the exception, not the rule (paper: 1 of 9).
    losses = sum(1 for i in improvements if i < -5)
    assert losses <= 3, f"IG-Match lost badly on {losses} of 9 circuits"
