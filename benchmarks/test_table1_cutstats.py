"""Benchmark E1 — regenerate Table 1 (cut statistics for k-pin nets).

Workload: the Prim2 stand-in (exact Primary2 net-size histogram at full
scale), partitioned by IG-Match; the table counts cut nets per net size.

Paper shape claim: the cut probability is NOT monotone in net size.
"""

from repro.experiments import run_table1

from .conftest import run_once, save_result


def test_table1_cut_statistics(benchmark, scale, seed):
    result = run_once(
        benchmark, lambda: run_table1(scale=scale, seed=seed)
    )
    save_result("table1_cutstats", result)

    # Structure: one row per occurring net size, counts positive.
    assert all(row[1] > 0 for row in result.rows)
    total_cut = sum(row[2] for row in result.rows)
    assert total_cut > 0

    # Shape: non-monotone cut fraction, as the paper observes.
    fractions = [float(row[4]) for row in result.rows if row[1] > 0]
    monotone = all(
        a <= b + 1e-12 for a, b in zip(fractions, fractions[1:])
    )
    assert not monotone, (
        "cut probability came out monotone in net size — the paper's "
        "Table 1 non-monotonicity did not reproduce"
    )
