"""Benchmark X3 — the clustering-condensation (multilevel) hybrid.

Paper conclusion: condensing the input via clustering before
partitioning "is also promising."

Shape claims: the hybrid completes on every circuit and lands within a
moderate quality factor of flat IG-Match (it trades quality for speed
on large inputs).
"""

from repro.experiments import run_multilevel_ablation

from .conftest import run_once, save_result


def test_multilevel_hybrid(benchmark, scale, seed):
    result = run_once(
        benchmark,
        lambda: run_multilevel_ablation(scale=scale, seed=seed),
    )
    save_result("ablation_clustering", result)

    for circuit, flat, _, hybrid, _, levels in result.rows:
        assert int(levels) >= 1, circuit
        assert float(hybrid) <= 10 * float(flat), (
            f"{circuit}: hybrid quality collapsed "
            f"({hybrid} vs flat {flat})"
        )
