"""Benchmark — the stability claim (Sections 1.1 and 5).

The paper argues spectral methods are "inherently stable": one
deterministic execution, versus iterative methods needing many random
restarts for predictable quality.

Shape claims: IG-Match's ratio cut has zero spread across seeds of the
eigensolver's start vector, while single-run RCut shows real spread
across starting partitions.
"""

from repro.analysis import stability_analysis
from repro.bench import build_circuit
from repro.partitioning import IGMatchConfig, RCutConfig, ig_match, rcut

from .conftest import run_once


def test_stability_spread(benchmark, scale, seed):
    h = build_circuit("Test02", seed=seed, scale=scale)

    def run():
        igm = stability_analysis(
            h,
            lambda hh, s: ig_match(hh, IGMatchConfig(seed=s)),
            "IG-Match",
            seeds=range(4),
        )
        single_rcut = stability_analysis(
            h,
            lambda hh, s: rcut(hh, RCutConfig(restarts=1, seed=s)),
            "RCut(1 run)",
            seeds=range(4),
        )
        return igm, single_rcut

    igm, single_rcut = run_once(benchmark, run)

    # IG-Match: deterministic output regardless of eigensolver seed.
    assert igm.relative_spread < 0.05, str(igm)
    # Single-run RCut depends on its random start; its worst run is
    # no better than its best (and typically strictly worse).
    assert single_rcut.worst >= single_rcut.best
