"""Benchmark A1 — intersection-graph edge-weighting ablation.

Paper shape claim (Section 2.2): the alternative weightings give
"extremely similar, high-quality partitioning results" — the dual
representation is robust to the weighting choice.
"""

from collections import defaultdict

from repro.experiments import run_weighting_ablation

from .conftest import run_once, save_result


def test_weighting_robustness(benchmark, scale, seed):
    result = run_once(
        benchmark, lambda: run_weighting_ablation(scale=scale, seed=seed)
    )
    save_result("ablation_weights", result)

    by_circuit = defaultdict(list)
    for row in result.rows:
        by_circuit[row[0]].append(float(row[4]))

    # Shape: per circuit, the spread across weightings is bounded — the
    # worst weighting is within a small factor of the best.
    for circuit, ratios in by_circuit.items():
        assert max(ratios) <= 5 * min(ratios), (
            f"{circuit}: weighting spread too large: {ratios}"
        )
