"""Benchmark E6 — runtime competitiveness (Section 4 text).

The paper: 83 CPU s for the PrimSC2 eigenvector vs 204 s for 10 RCut1.0
runs.  Absolute numbers are machine-bound; here pytest-benchmark times
the individual pipeline stages on the Prim2 stand-in so relative costs
are visible in the benchmark table, and the E6 experiment table is
regenerated alongside.
"""

import pytest

from repro.bench import build_circuit
from repro.experiments import run_runtime
from repro.intersection import intersection_graph
from repro.partitioning import IGMatchConfig, RCutConfig, ig_match, rcut
from repro.spectral import spectral_ordering

from .conftest import run_once, save_result


@pytest.fixture(scope="module")
def prim2(scale, seed):
    return build_circuit("Prim2", seed=seed, scale=scale)


def test_spectral_ordering_time(benchmark, prim2, seed):
    graph = intersection_graph(prim2, "paper")
    order = benchmark.pedantic(
        lambda: spectral_ordering(graph, seed=seed), rounds=3, iterations=1
    )
    assert sorted(order) == list(range(prim2.num_nets))


def test_igmatch_pipeline_time(benchmark, prim2, seed):
    result = run_once(
        benchmark, lambda: ig_match(prim2, IGMatchConfig(seed=seed))
    )
    assert result.nets_cut > 0


def test_rcut_10_restarts_time(benchmark, prim2, seed):
    result = run_once(
        benchmark,
        lambda: rcut(prim2, RCutConfig(restarts=10, seed=seed)),
    )
    assert result.partition.u_size >= 1


def test_runtime_table(benchmark, scale, seed):
    result = run_once(
        benchmark,
        lambda: run_runtime(
            names=["Prim2"], scale=scale, seed=seed, restarts=10
        ),
    )
    save_result("runtime", result)
    assert len(result.rows) == 1
