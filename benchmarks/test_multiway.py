"""Benchmark X5 — multiway emulation-board partitioning (§1).

Shape claims: the ratio-cut-driven strategies (recursive IG-Match,
spectral k-way) multiplex no more signals than balanced FM on average,
reproducing the §1 hardware-simulation cost argument.
"""

from collections import defaultdict

from repro.experiments.multiway_exp import run_multiway_comparison

from .conftest import run_once, save_result


def test_multiway_emulation(benchmark, scale, seed):
    result = run_once(
        benchmark,
        lambda: run_multiway_comparison(scale=scale, seed=seed),
    )
    save_result("multiway", result)

    by_circuit = defaultdict(dict)
    for row in result.rows:
        by_circuit[row[0]][row[1]] = int(row[2])  # spanning nets

    wins = 0
    total = 0
    for circuit, spanning in by_circuit.items():
        total += 1
        best_ratio_cut = min(
            spanning["recursive IG-Match"], spanning["spectral k-way"]
        )
        if best_ratio_cut <= spanning["recursive balanced FM"]:
            wins += 1
    assert wins >= (total + 1) // 2, (
        f"ratio-cut multiway lost to balanced FM on {total - wins} of "
        f"{total} circuits"
    )
